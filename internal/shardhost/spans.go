package shardhost

import (
	"strconv"
	"time"

	"gcplus/internal/core"
	"gcplus/internal/trace"
)

// Shard-side span synthesis. A shard does not instrument its stages
// with live span objects; the runtime already measures every stage into
// QueryStats, so the span subtree is derived from those measurements
// after the fact — one allocation-light pass that runs OFF the owner
// goroutine (the wire server builds it on its writer goroutine, the
// router builds it during trace assembly), so the serial shard owner
// never pays for span construction. Crucially, which spans exist
// depends only on non-timing stats fields (plan algorithm, cache
// bypass, error), never on measured durations, so the local and
// loopback transports produce identically shaped trees by
// construction: both run this exact function over the same stats.

// BuildShardSpans synthesizes the span subtree for one shard's query:
// a "shard" root parented under tc.Parent (the router's fan-out span)
// with stage children laid out back to back from startNanos:
//
//	shard
//	├── queue            (always; measured owner-queue wait)
//	├── plan             (iff a plan was computed: st.PlanAlgorithm set)
//	├── consistency      (iff the cache path ran)
//	├── hit              (iff the cache path ran)
//	└── verify           (always on success)
//
// A failed query keeps its partial trace: the root records the error
// and only the queue child is emitted (stats are zero-valued on error,
// so stage spans would be fiction). Returns nil for an invalid context.
func BuildShardSpans(tc trace.Context, shard int, startNanos int64, queue time.Duration, st *core.QueryStats, qerr error, cacheEnabled bool) []trace.Span {
	if !tc.Valid() {
		return nil
	}
	return AppendShardSpans(make([]trace.Span, 0, 6), tc, shard, startNanos, queue, st, qerr, cacheEnabled)
}

// AppendShardSpans is BuildShardSpans appending into dst, so a caller
// assembling a whole trace (the router) lays every shard subtree into
// one backing array with no intermediate copies. Attrs are carved from
// one per-call arena in fixed 4-attr windows, so SetAttr never
// allocates per span (a span outgrowing its window just falls back to
// append's own reallocation). Returns dst unchanged for an invalid
// context.
func AppendShardSpans(dst []trace.Span, tc trace.Context, shard int, startNanos int64, queue time.Duration, st *core.QueryStats, qerr error, cacheEnabled bool) []trace.Span {
	if !tc.Valid() {
		return dst
	}
	// The root lives at index ri and is finalized last, once the stage
	// cursor has advanced past every child (a query subtree tops out at
	// root + 5 stage spans).
	ri := len(dst)
	spans := append(dst, trace.Span{})
	arena := make([]trace.Attr, 6*4)
	narena := 0
	grab := func() []trace.Attr {
		a := arena[narena : narena : narena+4]
		narena += 4
		return a
	}
	root := &spans[ri]
	*root = trace.Span{
		TraceID:    tc.TraceID,
		ID:         trace.NewSpanID(),
		Parent:     tc.Parent,
		Name:       "shard",
		StartNanos: startNanos,
		Attrs:      grab(),
	}
	root.SetAttr("shard", strconv.Itoa(shard))

	cursor := startNanos
	child := func(name string, d time.Duration) *trace.Span {
		spans = append(spans, trace.Span{
			TraceID:    tc.TraceID,
			ID:         trace.NewSpanID(),
			Parent:     spans[ri].ID,
			Name:       name,
			StartNanos: cursor,
			DurNanos:   int64(d),
			Attrs:      grab(),
		})
		cursor += int64(d)
		root = &spans[ri] // append may have moved the backing array
		return &spans[len(spans)-1]
	}

	child("queue", queue)
	if qerr != nil {
		msg := qerr.Error()
		if len(msg) > 256 {
			msg = msg[:256]
		}
		root.SetAttr("error", msg)
		root.DurNanos = cursor - startNanos
		return spans
	}

	if st.PlanAlgorithm != "" {
		p := child("plan", st.PlanTime)
		p.SetAttr("algorithm", st.PlanAlgorithm)
		p.SetAttr("cached", strconv.FormatBool(st.PlanCached))
	}
	if cacheEnabled && !st.CacheBypassed {
		child("consistency", st.ConsistencyTime)
		hs := child("hit", st.HitTime)
		hs.SetAttr("class", hitClass(st))
		hs.SetAttr("scanned", strconv.Itoa(st.HitScanned))
		hs.SetAttr("candidates", strconv.Itoa(st.HitCandidates))
	}
	v := child("verify", st.VerifyTime)
	v.SetAttr("subiso_tests", strconv.Itoa(st.SubIsoTests))
	v.SetAttr("tests_saved", strconv.Itoa(st.TestsSaved))
	if st.VerifyWorkers > 0 {
		v.SetAttr("workers", strconv.Itoa(st.VerifyWorkers))
	}
	if st.Truncated {
		v.SetAttr("truncated", "true")
	}

	root.SetAttr("hit_class", hitClass(st))
	if st.CacheBypassed {
		root.SetAttr("bypassed", "true")
	}
	root.DurNanos = cursor - startNanos
	return spans
}

// hitClass collapses the stats' hit flags into the one-word cache
// verdict the trace annotates: how much of the answer the GC+ cache
// supplied before Method M verification ran.
func hitClass(st *core.QueryStats) string {
	switch {
	case st.ExactHit:
		return "exact"
	case st.EmptyShortcut:
		return "empty"
	case st.IsoHits > 0:
		return "iso"
	case st.ContainingHits > 0 || st.ContainedHits > 0:
		return "partial"
	default:
		return "miss"
	}
}
