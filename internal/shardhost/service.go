package shardhost

import (
	"context"
	"fmt"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/persist"
	"gcplus/internal/trace"
)

// This file is the ShardService contract: the request/reply vocabulary
// and the service methods every transport carries. Each method enqueues
// one owner job *synchronously* — the per-shard call order is fixed the
// moment the method returns, which is the property the router's epoch
// sequencing depends on — fills the caller-owned reply, and invokes
// done exactly once when the job completes. Replies are plain data so a
// wire transport can encode them; errors cross the seam as values in
// the reply, classified by the internal/transport status table.

// QueryRequest asks the shard for its partition's answer to one
// sub/supergraph containment query.
type QueryRequest struct {
	// Kind selects sub or super containment.
	Kind cache.Kind
	// Query is the pattern graph (treated as immutable).
	Query *graph.Graph
	// Opts carries the per-query execution options. Only the plain-data
	// fields (BypassCache, MaxVerifyParallelism, Limit) cross a wire
	// transport; the OnAnswer streaming hook is in-process only.
	Opts core.QueryOptions
	// Trace is the propagated trace context. When Sampled, the shard
	// synthesizes its span subtree into the reply and tags its stage
	// histograms with the trace id as an exemplar.
	Trace trace.Context
}

// QueryReply is the shard's answer.
type QueryReply struct {
	// IDs is the shard's answer set as ascending global graph ids
	// (translated host-side through the shard's local→global map).
	IDs []int
	// Stats is the shard runtime's per-query execution breakdown.
	Stats core.QueryStats
	// Err is the per-shard failure (typically a *core.CancelError).
	Err error
	// HostNanos is the host-measured wall time from the service call to
	// the reply being ready — queue wait plus execution. A transport's
	// round trip minus HostNanos is the pure transport overhead, which
	// is how the router computes the trace's transport_us.
	HostNanos int64
	// QueueNanos is the measured wait in the shard's owner queue —
	// HostNanos minus execution. Always filled, so the router can report
	// per-shard queue pressure for untraced queries too.
	QueueNanos int64
	// Spans is the shard's synthesized span subtree. Wire transports fill
	// it (server-side, off the owner goroutine) for sampled requests —
	// error replies included, so a cancelled query keeps its partial
	// trace. The in-process transport leaves it nil and the router
	// synthesizes an identically-shaped subtree from the reply's stats:
	// both paths run BuildShardSpans over the same non-timing fields, so
	// the owner goroutine never pays for span construction either way.
	Spans []trace.Span
}

// OpRequest applies one dataset change operation to the shard. The
// router resolves placement: for ADD the graph rides in Op.Graph (the
// host assigns the next local id and records GlobalID in its map); for
// DEL/UA/UR Op.GraphID is already the shard-local id.
type OpRequest struct {
	Op       changeplan.Op
	GlobalID int
	// Trace is the propagated trace context for the owning update. The
	// host does not synthesize op spans (the router builds the update's
	// trace from replies), but the context crosses the wire so a future
	// remote shard can.
	Trace trace.Context
}

// OpReply reports one operation's outcome: the global id on success
// (ADD echoes the assigned id), -1 and Err on failure.
type OpReply struct {
	ID  int
	Err error
}

// WALAppendReply acknowledges one epoch's WAL frame per the host's
// append-failure policy.
type WALAppendReply struct {
	Err error
	// Nanos is the measured append latency (encode + write + fsync and
	// any in-place retries); zero when the append never ran (gap open,
	// missing segment). The router turns it into the update trace's
	// per-shard wal_append span.
	Nanos int64
}

// SnapshotReply carries one shard's export for a snapshot generation.
// Exactly one of Snap (in-process transports: the raw export, encoded
// by the collector off the owner goroutine) or Payload (wire
// transports: already encoded host-side) is set on success.
type SnapshotReply struct {
	Snap    *persist.ShardSnapshot
	Payload []byte
	// RotateErr reports a failed WAL rotation; the export may still be
	// absent in that case and the generation must be abandoned.
	RotateErr error
}

// StatsReply is one shard's statistics snapshot, taken in owner context
// so it is consistent with the job stream. Field names mirror the
// router's per-shard stats surface; json tags make the reply portable
// over control-plane transports without a hand-rolled codec.
type StatsReply struct {
	LiveGraphs      int                  `json:"live_graphs"`
	LogSeq          uint64               `json:"log_seq"`
	HitRate         float64              `json:"hit_rate"`
	ValidityRatio   float64              `json:"validity_ratio"`
	QueueLen        int                  `json:"queue_len"`
	WALBytes        int64                `json:"wal_bytes"`
	WALAppends      int64                `json:"wal_appends"`
	WALAppendErrors int64                `json:"wal_append_errors"`
	Metrics         core.MetricsSnapshot `json:"metrics"`
	Cache           cache.Stats          `json:"cache"`
	DurableEpoch    uint64               `json:"durable_epoch"`
	VolatileWAL     bool                 `json:"volatile_wal"`
	// Err is the transport-level failure slot: never set by the host,
	// filled by a wire client whose request could not complete.
	Err error `json:"-"`
}

// Query runs one containment query against the shard partition. The
// reply's IDs are global, ascending; with Opts.Limit set the shard
// streams verification in ascending id order and stops after Limit
// local answers (the PR-8 streaming contract the router's global
// prefix cut depends on). ctx expiry aborts at the next cooperative
// checkpoint; a request that expired before its job started fails with
// stage "queue".
func (h *Host) Query(ctx context.Context, req *QueryRequest, reply *QueryReply, done func()) {
	at := h.now()
	sampled := req.Trace.Sampled && req.Trace.Valid()
	h.EnqueueTimed(func(wait time.Duration) {
		reply.QueueNanos = int64(wait)
		if sampled {
			h.queueWait.SetExemplar(wait, uint64(req.Trace.TraceID))
		}
		defer func() {
			if d := h.now().Sub(at); d > 0 {
				reply.HostNanos = int64(d)
			}
			done()
		}()
		if ctx != nil {
			select {
			case <-ctx.Done():
				// Expired while waiting in the shard queue.
				reply.Err = &core.CancelError{Stage: "queue", Err: ctx.Err()}
				return
			default:
			}
		}
		opts := req.Opts
		if sampled {
			// In-process only: tells the runtime's stage histograms which
			// trace to cite as their exemplar.
			opts.TraceID = uint64(req.Trace.TraceID)
		}
		var res *core.Result
		var err error
		if req.Kind == cache.KindSub {
			res, err = h.rt.SubgraphQueryCtx(ctx, req.Query, opts)
		} else {
			res, err = h.rt.SupergraphQueryCtx(ctx, req.Query, opts)
		}
		if err != nil {
			reply.Err = err
			return
		}
		locals := res.AnswerIDs()
		ids := make([]int, len(locals))
		for j, l := range locals {
			ids[j] = h.localToGlobal[l]
		}
		reply.IDs = ids
		reply.Stats = res.Stats
	})
}

// ApplyOp applies one routed operation in owner context, maintaining
// the local→global map and accumulating the op into the pending WAL
// batch when logging is on.
func (h *Host) ApplyOp(req *OpRequest, reply *OpReply, done func()) {
	op, gid := req.Op, req.GlobalID
	h.Enqueue(func() {
		defer done()
		if op.Type == dataset.OpAdd {
			local, err := h.ds.Add(op.Graph)
			if err == nil && local != len(h.localToGlobal) {
				// Cannot happen while all ADDs flow through this path;
				// fail loudly rather than corrupt the id translation.
				err = fmt.Errorf("serve: shard %d local id %d out of step (want %d)",
					h.id, local, len(h.localToGlobal))
			}
			if err != nil {
				reply.ID, reply.Err = -1, err
				return
			}
			h.localToGlobal = append(h.localToGlobal, gid)
			if h.wal != nil {
				h.walPending = append(h.walPending,
					persist.WALOp{Op: changeplan.AddOp(op.Graph), GlobalID: gid})
			}
			reply.ID = gid
			return
		}
		local := op.GraphID
		var err error
		switch op.Type {
		case dataset.OpDelete:
			err = h.ds.Delete(local)
		case dataset.OpUpdateAddEdge:
			err = h.ds.UpdateAddEdge(local, op.U, op.V)
		case dataset.OpUpdateRemoveEdge:
			err = h.ds.UpdateRemoveEdge(local, op.U, op.V)
		default:
			err = fmt.Errorf("serve: unknown op type %v", op.Type)
		}
		if err != nil {
			// Shard errors speak in shard-local ids; re-anchor them to
			// the global id the caller used.
			reply.ID = -1
			reply.Err = fmt.Errorf("serve: %s on graph %d (shard %d, local %d): %w",
				op.Type, gid, h.id, local, err)
			return
		}
		if h.wal != nil {
			// Logged in shard-local id space — replay applies ops
			// straight to the shard dataset.
			lop := changeplan.Op{Type: op.Type, GraphID: local, U: op.U, V: op.V}
			h.walPending = append(h.walPending, persist.WALOp{Op: lop, GlobalID: gid})
		}
		reply.ID = gid
	})
}

// Sync enqueues one cache-reconciliation sweep (CON validation or EVI
// purge against the shard's log suffix). done may be nil for
// fire-and-forget sweeps whose effect is ordered by the queue itself.
func (h *Host) Sync(done func()) {
	h.Enqueue(func() {
		h.rt.Sync()
		if done != nil {
			done()
		}
	})
}

// walAppendRetries bounds the in-place retries of a rolled-back WAL
// append before the failure policy applies; with walRetryBase doubling
// per attempt the owner goroutine blocks at most ~2·walRetryBase·2^n.
const (
	walAppendRetries = 3
	walRetryBase     = time.Millisecond
)

// AppendWAL drains the pending batch ops into one epoch-stamped frame
// and appends it (fsynced unless Config.NoSync). The router calls it on
// every shard — touched or not — right after a batch's op jobs; FIFO
// order guarantees the pending list holds exactly that batch's applied
// ops when the job runs, and untouched shards log an empty frame,
// keeping per-shard epochs dense. A failure that survives the bounded
// in-place retries opens a durability gap resolved per the configured
// WAL policy.
func (h *Host) AppendWAL(epoch uint64, reply *WALAppendReply, done func()) {
	h.Enqueue(func() {
		defer done()
		batch := persist.WALBatch{Epoch: epoch, Ops: h.walPending}
		h.walPending = nil
		if h.wal == nil {
			h.walAppendErrors.Add(1)
			reply.Err = fmt.Errorf("serve: shard %d has no open WAL segment", h.id)
			return
		}
		if h.volatileWAL.Load() {
			// A durability gap is already open: recovery replays only a
			// contiguous epoch chain, so frames appended past the gap can
			// never prove anything durable. Don't pretend — resolve per
			// policy and wait for rotation to heal.
			h.walAppendErrors.Add(1)
			if !h.cfg.FailUpdateOnGap {
				return
			}
			reply.Err = fmt.Errorf("serve: shard %d WAL has a durability gap since batch %d; awaiting snapshot rotation", h.id, h.walGapEpoch)
			return
		}
		at := time.Now()
		payload, err := persist.EncodeWALBatch(&batch)
		if err == nil {
			err = h.wal.Append(payload)
			// Bounded in-place retries: a retryable failure means the
			// appender rolled the segment back to the previous frame
			// boundary, so the same frame can simply be written again
			// after an exponential backoff. The jitter is derived
			// deterministically from (epoch, shard, attempt) so chaos
			// runs replay bit-identically from their seed.
			for attempt := 0; err != nil && persist.IsRetryableAppend(err) && attempt < walAppendRetries; attempt++ {
				d := walRetryBase << attempt
				d += time.Duration((epoch*2654435761 + uint64(h.id)*7919 + uint64(attempt)*104729) % uint64(walRetryBase))
				time.Sleep(d)
				err = h.wal.Append(payload)
			}
		}
		// The append latency is dominated by the fsync (unless NoSync) —
		// the per-batch durability price the histogram exists to expose.
		d := time.Since(at)
		h.walAppend.Observe(d)
		reply.Nanos = int64(d)
		h.walAppends.Add(1)
		if err == nil {
			storeMax(&h.durableEpoch, epoch)
			return
		}
		h.walAppendErrors.Add(1)
		h.noteWALGap(epoch, err)
		if h.cfg.FailUpdateOnGap {
			reply.Err = err
		}
	})
}

// noteWALGap latches the durability gap after a final (post-retry)
// append failure: an edge-triggered alarm fires once, the shard's
// durable-epoch claim freezes, and the coordinator is asked to schedule
// a healing snapshot rotation. Runs on the owner goroutine (walGapEpoch
// is owner state).
func (h *Host) noteWALGap(epoch uint64, cause error) {
	if !h.volatileWAL.Swap(true) {
		h.walGapEpoch = epoch
		h.log.Error("WAL durability gap opened",
			"shard", h.id, "epoch", epoch, "policy", h.cfg.WALPolicy, "err", cause)
	}
	if h.cfg.OnDurabilityGap != nil {
		h.cfg.OnDurabilityGap()
	}
}

// Snapshot exports the shard's state for a snapshot generation at
// epoch, doing three things back to back in owner context: reconcile
// the cache with the shard log (so the exported cache's AppliedSeq
// equals the dataset's sequence number — the precondition for not
// persisting the log itself), export dataset + runtime state (cheap:
// graph pointers are shared, bitsets cloned), and rotate the WAL so the
// new segment's frames are exactly the batches after this generation.
// Encoding and file IO happen off the owner — collector-side for
// in-process transports, writer-side for wire transports.
func (h *Host) Snapshot(epoch uint64, reply *SnapshotReply, done func()) {
	h.Enqueue(func() {
		defer done()
		h.rt.Sync()
		l2g := make([]int, len(h.localToGlobal))
		copy(l2g, h.localToGlobal)
		reply.Snap = &persist.ShardSnapshot{
			Epoch:         epoch,
			Dataset:       h.ds.Export(),
			LocalToGlobal: l2g,
			State:         h.rt.ExportState(),
		}
		if h.cfg.WAL {
			// Rotation also heals a missing or poisoned segment from an
			// earlier failed append or rotation — every generation
			// retries, so a transient disk error does not disable
			// logging for the process's lifetime.
			if h.wal != nil {
				if err := h.wal.Close(); err != nil && !h.volatileWAL.Load() {
					// A clean segment must flush before rotation; a
					// gapped one is already useless for replay, so its
					// close failure must not fail the generation that
					// exists to heal it.
					reply.RotateErr = err
				}
				h.wal = nil
			}
			w, err := persist.CreateWALFS(h.cfg.Store.FS(), h.cfg.Store.WALPath(h.id, epoch), h.id, epoch, !h.cfg.NoSync)
			if err != nil {
				// Fail loudly on the next update rather than drop batches
				// silently: AppendWAL errors on a nil segment.
				reply.RotateErr = err
				return
			}
			h.wal = w
		}
	})
}

// Stats fills one shard's statistics snapshot in owner context.
func (h *Host) Stats(reply *StatsReply, done func()) {
	h.Enqueue(func() {
		defer done()
		m := h.rt.Metrics()
		*reply = StatsReply{
			LiveGraphs:      h.ds.LiveCount(),
			LogSeq:          h.ds.Seq(),
			HitRate:         m.HitRate(),
			ValidityRatio:   h.rt.ValidityRatio(),
			QueueLen:        len(h.jobs),
			WALAppends:      h.walAppends.Load(),
			WALAppendErrors: h.walAppendErrors.Load(),
			Metrics:         m.Snapshot(),
			Cache:           h.rt.CacheStats(),
			DurableEpoch:    h.durableEpoch.Load(),
			VolatileWAL:     h.volatileWAL.Load(),
		}
		if h.wal != nil {
			reply.WALBytes = h.wal.Size()
		}
	})
}

// ReplayBatch applies one logged batch to the shard during warm-restart
// recovery: ops run through the existing executor against the shard
// dataset, in shard-local id space, and ADDs extend the local→global
// map with their logged global ids. Every logged op applied once
// before, so a replay failure means corruption and is fatal. Boot-time
// only (the worker is not running yet).
func (h *Host) ReplayBatch(b *persist.WALBatch) error {
	for _, wop := range b.Ops {
		if wop.Op.Type == dataset.OpAdd {
			local, err := h.ds.Add(wop.Op.Graph)
			if err != nil {
				return err
			}
			if local != len(h.localToGlobal) {
				return fmt.Errorf("replayed ADD got local id %d, want %d", local, len(h.localToGlobal))
			}
			h.localToGlobal = append(h.localToGlobal, wop.GlobalID)
			continue
		}
		if _, err := wop.Op.Apply(h.ds); err != nil {
			return err
		}
	}
	return nil
}

// ResetWAL puts the shard's on-disk WAL in sync with recovered state:
// the appender continues in the segment based at keepBase, truncated at
// keepEnd (just past the last replayed frame), or a fresh segment when
// keepEnd < 0 (no replayed frame lives in a segment — it may not exist,
// or hold only discarded frames). Boot-time only.
func (h *Host) ResetWAL(keepBase uint64, keepEnd int64) error {
	path := h.cfg.Store.WALPath(h.id, keepBase)
	if keepEnd < 0 {
		w, err := persist.CreateWALFS(h.cfg.Store.FS(), path, h.id, keepBase, !h.cfg.NoSync)
		if err != nil {
			return err
		}
		h.wal = w
		return nil
	}
	w, err := persist.OpenWALAppendFS(h.cfg.Store.FS(), path, h.id, keepEnd, !h.cfg.NoSync)
	if err != nil {
		return err
	}
	h.wal = w
	return nil
}
