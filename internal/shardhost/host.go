// Package shardhost is the single-shard owner service of the serving
// stack: one Host owns one partition of the dataset — its own
// dataset.Dataset (with its own update log for §5.2 CON validation),
// core.Runtime and GC+ cache — plus that partition's durability state
// (WAL segment, pending batch ops, durable-epoch claim).
//
// A Host is deliberately narrow: it answers the ShardService contract —
// Query, ApplyOp, AppendWAL, Sync, Snapshot, Stats — and nothing else.
// Placement (global graph id → shard), epoch sequencing, fan-out/merge,
// admission control and the pressure ladder all live one layer up in
// internal/router, which talks to Hosts only through the
// internal/transport ShardClient interface. That is what makes a shard
// *addressable*: the router cannot tell a Host reached by direct
// in-process calls from one reached over a wire, and the consistency
// argument (FIFO job order per shard, enqueue-order atomicity across
// shards) only requires that a transport establish per-shard call order
// synchronously at call time.
//
// A single worker goroutine — this shard's member of the query worker
// pool — executes every job touching the shard state, which is what
// makes the not-thread-safe runtime safe to serve from: all access is
// funnelled through the FIFO jobs queue. Service methods enqueue an
// owner job synchronously and return; the reply struct is filled and the
// done callback invoked when the job completes.
package shardhost

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"

	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/obs"
	"gcplus/internal/persist"
)

// JobQueueDepth bounds how many jobs can wait per shard before enqueue
// blocks. Enqueues happen under the router's sequence lock, so a deep
// queue keeps bursts from serializing front-end callers on a single
// slow shard. Exported because the router's pressure thresholds are
// fractions of it.
const JobQueueDepth = 128

// Config carries the host-side durability and policy settings. The
// Store is shared with the router in the single-process deployments
// this package currently serves (local and loopback transports run all
// shards in one process); a future remote host would own its shard
// directories outright — the path scheme is already per-shard.
type Config struct {
	// Store locates the shard's WAL segments and snapshot files; nil
	// disables persistence entirely.
	Store *persist.Store
	// WAL enables update-batch logging (Store must be set).
	WAL bool
	// NoSync skips the fsync after each WAL append.
	NoSync bool
	// WALPolicy is the append-failure policy; the vocabulary (and the
	// shared status-code table it maps into) lives in internal/transport.
	WALPolicy string
	// FailUpdateOnGap selects the fail-update policy's behavior for the
	// WALPolicy string without this package importing the policy
	// constants: true propagates append failures to the batch ack, false
	// (degrade-to-volatile) acknowledges them and latches volatile.
	FailUpdateOnGap bool
	// OnDurabilityGap, if set, is called (on the owner goroutine) right
	// after a WAL durability gap opens, so the coordinator can schedule
	// a healing snapshot rotation.
	OnDurabilityGap func()
}

// Host owns one shard. See the package comment for the ownership and
// threading model.
type Host struct {
	id   int
	ds   *dataset.Dataset
	rt   *core.Runtime
	jobs chan func()
	done chan struct{}
	cfg  Config

	// Background repair pipeline (nil channels when repair is off). The
	// repair goroutine never touches shard state directly: it enqueues a
	// plan job and a commit job on the worker (owner context) and runs
	// only the verification phase — which reads immutable data — itself.
	repairKick chan struct{} // worker → repair loop: queue non-empty
	repairQuit chan struct{} // closed by Stop, before jobs is closed
	repairDone chan struct{} // closed when the repair loop has exited

	// Durability state (nil/empty when persistence is off). wal is the
	// shard's current WAL segment; appends, rotation and walPending are
	// all owner-goroutine state, ordered with the dataset mutations they
	// record by the FIFO queue itself. walPending accumulates the
	// current batch's successfully applied ops between the batch's op
	// jobs and its WAL-append job.
	wal        *persist.WAL
	walPending []persist.WALOp

	// durableEpoch is the newest epoch this shard can prove durable
	// (last successful WAL append or snapshot covering it); the router's
	// durable-epoch claim is the minimum over shards. volatileWAL
	// latches when the degrade-to-volatile policy swallows an append
	// failure; cleared when a snapshot rotation installs a fresh healthy
	// segment.
	durableEpoch atomic.Uint64
	volatileWAL  atomic.Bool
	walGapEpoch  uint64 // first epoch lost to the open gap (owner state)

	// localToGlobal translates shard-local graph ids to global ids. It
	// is appended to by ADD jobs and read by query jobs — both run on
	// the worker goroutine, so no locking is needed.
	localToGlobal []int

	// Observability. queueWait measures enqueue-to-execution latency of
	// every job routed through Enqueue — the head-of-line blocking a
	// query experiences behind updates, repairs and snapshots on this
	// shard. walAppend measures the WAL append (encode + write + fsync)
	// inside the owner job; walAppends/walAppendErrors are its lifetime
	// counters, read lock-free by stats and metrics scrapes.
	queueWait       *obs.Histogram
	walAppend       *obs.Histogram
	walAppends      atomic.Int64
	walAppendErrors atomic.Int64
	// log receives shard lifecycle warnings (repair-queue drops); set
	// via SetLogger before Start. lastRepairDropped is owner-goroutine
	// state backing the drop-detection edge trigger.
	log               *slog.Logger
	lastRepairDropped int64

	// pendingRepairs mirrors the runtime's repair backlog for lock-free
	// reads by the pressure controller (through Signals); the owner
	// goroutine publishes it after every job.
	pendingRepairs atomic.Int64

	// Fault-injection and clock hooks, set before Start. stall (nil in
	// production) runs at the start of every job; now replaces time.Now
	// for queue-wait bookkeeping.
	stall func(int)
	now   func() time.Time

	// repairCtx is cancelled by Stop so an in-flight repair verification
	// exits at its next cooperative checkpoint instead of finishing the
	// whole batch.
	repairCtx    context.Context
	repairCancel context.CancelFunc
}

// New builds a Host over its partition. gids lists the global ids of
// the partition graphs in local-id order. The host's goroutines are not
// started: callers run Start once the shard state — possibly overlaid
// with recovered snapshot/WAL state — is final.
func New(id int, part []*graph.Graph, gids []int, opts core.Options, cfg Config) (*Host, error) {
	return NewOver(id, dataset.New(part), gids, opts, cfg)
}

// NewOver builds a Host over an existing dataset (the recovery path
// restores the dataset first).
func NewOver(id int, ds *dataset.Dataset, gids []int, opts core.Options, cfg Config) (*Host, error) {
	rt, err := core.NewRuntime(ds, opts)
	if err != nil {
		return nil, err
	}
	return &Host{
		id:            id,
		ds:            ds,
		rt:            rt,
		cfg:           cfg,
		jobs:          make(chan func(), JobQueueDepth),
		done:          make(chan struct{}),
		localToGlobal: gids,
		queueWait:     obs.NewHistogram(),
		walAppend:     obs.NewHistogram(),
		log:           slog.New(slog.DiscardHandler),
		now:           time.Now,
	}, nil
}

// ID returns the shard index.
func (h *Host) ID() int { return h.id }

// SetLogger routes shard lifecycle warnings; call before Start.
func (h *Host) SetLogger(l *slog.Logger) {
	if l != nil {
		h.log = l
	}
}

// SetClock replaces time.Now for queue-wait bookkeeping (the chaos
// harness's clock-skew hook); call before Start.
func (h *Host) SetClock(now func() time.Time) {
	if now != nil {
		h.now = now
	}
}

// SetStall installs the chaos harness's per-job stall hook; call before
// Start.
func (h *Host) SetStall(fn func(int)) { h.stall = fn }

// Runtime exposes the shard runtime for boot-time construction
// (recovery restores state before Start) and owner-context test
// drivers. Outside those windows every access must go through the job
// queue.
func (h *Host) Runtime() *core.Runtime { return h.rt }

// Dataset exposes the shard dataset under the same owner-context
// contract as Runtime.
func (h *Host) Dataset() *dataset.Dataset { return h.ds }

// LocalToGlobal returns the shard's local→global id map. Boot-time and
// owner-context use only.
func (h *Host) LocalToGlobal() []int { return h.localToGlobal }

// CacheEnabled reports whether this shard runs the GC+ cache. The flag
// is fixed at construction, so any goroutine may read it — the wire
// server uses it to synthesize span subtrees off the owner goroutine.
func (h *Host) CacheEnabled() bool { return h.rt.CacheEnabled() }

// QueueWaitHist and WALAppendHist expose the host-owned histograms for
// registry registration by the process that scrapes them.
func (h *Host) QueueWaitHist() *obs.Histogram { return h.queueWait }
func (h *Host) WALAppendHist() *obs.Histogram { return h.walAppend }

// QueueLen reports the job queue depth (jobs enqueued, not started).
func (h *Host) QueueLen() int { return len(h.jobs) }

// Signals is the host's lock-free control-plane sample: the inputs the
// router's pressure controller ladders on.
type Signals struct {
	QueueLen       int
	PendingRepairs int64
}

// Signals samples the current pressure inputs lock-free.
func (h *Host) Signals() Signals {
	return Signals{QueueLen: len(h.jobs), PendingRepairs: h.pendingRepairs.Load()}
}

// Enqueue submits a job to the shard worker, recording how long it
// waited in the queue before running. Every job producer goes through
// here so the queue-wait histogram covers the shard's whole workload
// and the stall hook covers every job. The wait is clamped at zero:
// under clock-skew injection h.now may step backwards, and a skewed
// clock must only distort metrics, never state.
func (h *Host) Enqueue(fn func()) {
	h.EnqueueTimed(func(time.Duration) { fn() })
}

// EnqueueTimed is Enqueue for jobs that want their own measured queue
// wait (the tracing path turns it into the per-shard queue span and the
// reply's QueueNanos without a second clock read).
func (h *Host) EnqueueTimed(fn func(wait time.Duration)) {
	at := h.now()
	h.jobs <- func() {
		if h.stall != nil {
			h.stall(h.id)
		}
		d := h.now().Sub(at)
		if d < 0 {
			d = 0
		}
		h.queueWait.Observe(d)
		fn(d)
	}
}

// Start launches the host's worker goroutine and, when repairPar > 0
// and the shard has a cache, its background repair worker.
func (h *Host) Start(repairPar int) {
	if repairPar > 0 && h.rt.CacheEnabled() {
		h.repairKick = make(chan struct{}, 1)
		h.repairQuit = make(chan struct{})
		h.repairDone = make(chan struct{})
		h.repairCtx, h.repairCancel = context.WithCancel(context.Background())
		go h.repairLoop(repairPar)
	}
	go h.loop()
}

// loop is the worker goroutine: drain jobs in FIFO order until stopped.
// After every job it kicks the repair loop if validation left
// invalidated pairs behind (PendingRepairs is an owner-context read).
func (h *Host) loop() {
	defer close(h.done)
	for job := range h.jobs {
		job()
		if h.rt.CacheEnabled() {
			// Publish the repair backlog for the pressure controller's
			// lock-free sampling (owner-context read, atomic publish).
			h.pendingRepairs.Store(int64(h.rt.PendingRepairs()))
		}
		if h.repairKick != nil {
			// Edge-triggered drop warning: the cache counts pairs it
			// sheds on a full repair queue; surface each increase once
			// instead of flooding one line per dropped pair.
			if d := h.rt.CacheStats().RepairDropped; d > h.lastRepairDropped {
				h.log.Warn("repair queue full, invalidated pairs dropped",
					"shard", h.id, "dropped", d-h.lastRepairDropped, "total_dropped", d)
				h.lastRepairDropped = d
			}
			if h.rt.PendingRepairs() > 0 {
				select {
				case h.repairKick <- struct{}{}:
				default: // a kick is already pending
				}
			}
		}
	}
}

// repairLoop is the shard's background repair worker. Each round drains
// one batch of invalidated (entry, graph) pairs via an owner-context
// plan job, re-verifies them on this goroutine (fanning out to
// parallelism workers over immutable data), and restores the surviving
// bits via an owner-context commit job. Because plan and commit run on
// the worker goroutine, repair interleaves with queries and update
// batches without locks and can never race an in-flight batch; the
// graph-version pointer check in CommitRepairs drops any result an
// interleaved update made stale.
func (h *Host) repairLoop(parallelism int) {
	defer close(h.repairDone)
	for {
		select {
		case <-h.repairQuit:
			return
		case <-h.repairKick:
		}
		for {
			select {
			case <-h.repairQuit:
				return
			default:
			}
			var jobs []core.RepairJob
			planned := make(chan struct{})
			h.Enqueue(func() {
				jobs = h.rt.PlanRepairs(core.DefaultRepairBatch)
				close(planned)
			})
			<-planned
			if len(jobs) == 0 {
				break
			}
			results := h.rt.VerifyRepairsCtx(h.repairCtx, jobs, parallelism)
			committed := make(chan struct{})
			h.Enqueue(func() {
				h.rt.CommitRepairs(results)
				close(committed)
			})
			<-committed
		}
	}
}

// Stop shuts the host down: first the repair loop (it enqueues jobs,
// so it must exit before the queue closes), then the worker. The WAL
// segment stays open — in-flight appends have drained by the time Stop
// returns, and the coordinator closes the files last.
func (h *Host) Stop() {
	if h.repairQuit != nil {
		close(h.repairQuit)
		h.repairCancel() // abort an in-flight verification batch early
		<-h.repairDone
	}
	close(h.jobs)
	<-h.done
}

// HasWAL reports whether the host currently holds an open WAL segment.
func (h *Host) HasWAL() bool { return h.wal != nil }

// CloseWAL closes the host's WAL segment if one is open: flushed (final
// fsync) when flush is true, raw otherwise — the crash-shaped path,
// where recovery must cope with exactly what the kernel happened to
// have. Safe to call with no open segment.
func (h *Host) CloseWAL(flush bool) error {
	if h.wal == nil {
		return nil
	}
	w := h.wal
	h.wal = nil
	if flush {
		return w.Close()
	}
	return w.CloseRaw()
}

// DurableEpoch is the newest epoch this shard can prove durable.
func (h *Host) DurableEpoch() uint64 { return h.durableEpoch.Load() }

// SetDurableEpoch seeds the durable-epoch claim at boot (everything
// replayed from disk is durable by definition).
func (h *Host) SetDurableEpoch(e uint64) { h.durableEpoch.Store(e) }

// WALVolatile reports an open WAL durability gap.
func (h *Host) WALVolatile() bool { return h.volatileWAL.Load() }

// NoteSnapshotDurable records that a complete snapshot generation at
// epoch is durable: the generation itself proves everything ≤ epoch
// durable, and the rotation anchored a fresh segment — any open
// durability gap is healed.
func (h *Host) NoteSnapshotDurable(epoch uint64) {
	storeMax(&h.durableEpoch, epoch)
	if h.volatileWAL.CompareAndSwap(true, false) {
		h.log.Warn("WAL durability gap healed by snapshot rotation",
			"shard", h.id, "epoch", epoch)
	}
}

// storeMax monotonically raises a to at least v.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
