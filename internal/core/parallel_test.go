package core

import (
	"math/rand"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/testutil"
)

// newParallelFixture builds two runtimes over independent but identical
// datasets: one verifying sequentially (the ground truth) and one with an
// intra-query worker pool. Caching is disabled on both so every query
// verifies the full candidate set — the parallel loop gets no chance to
// hide behind pruning.
func newParallelFixture(t *testing.T, seed int64, n, workers int, method string) (seqRT, parRT *Runtime, pool []*graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pool = make([]*graph.Graph, n)
	for i := range pool {
		pool[i] = testutil.RandomConnectedGraph(rng, 6+rng.Intn(20), 4, 0.12)
	}
	algo, err := subiso.New(method)
	if err != nil {
		t.Fatal(err)
	}
	seqRT, err = NewRuntime(dataset.New(pool), Options{Algorithm: algo, VerifyParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parRT, err = NewRuntime(dataset.New(pool), Options{Algorithm: algo, VerifyParallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	return seqRT, parRT, pool
}

// TestParallelVerifyMatchesSequential is the randomized -race stress test
// of the tentpole's acceptance bar: parallel verification must produce
// bit-identical answers to the single-threaded path, for sub and super
// queries, across methods, while the dataset evolves between queries.
func TestParallelVerifyMatchesSequential(t *testing.T) {
	for _, method := range []string{"VF2", "VF2+", "GQL"} {
		t.Run(method, func(t *testing.T) {
			seqRT, parRT, pool := newParallelFixture(t, 71, 120, 8, method)
			rng := rand.New(rand.NewSource(72))
			for step := 0; step < 60; step++ {
				// Mutate both datasets identically every few steps.
				if step%5 == 4 {
					switch rng.Intn(3) {
					case 0:
						g := testutil.RandomConnectedGraph(rng, 6+rng.Intn(12), 4, 0.12)
						if _, err := seqRT.Dataset().Add(g); err != nil {
							t.Fatal(err)
						}
						if _, err := parRT.Dataset().Add(g.Clone()); err != nil {
							t.Fatal(err)
						}
					case 1:
						id := rng.Intn(seqRT.Dataset().MaxID() + 1)
						errA := seqRT.Dataset().Delete(id)
						errB := parRT.Dataset().Delete(id)
						if (errA == nil) != (errB == nil) {
							t.Fatalf("DEL divergence on id %d: %v vs %v", id, errA, errB)
						}
					default:
						id := rng.Intn(seqRT.Dataset().MaxID() + 1)
						g := seqRT.Dataset().Graph(id)
						if g != nil && g.NumVertices() > 2 {
							u, v := rng.Intn(g.NumVertices()), rng.Intn(g.NumVertices())
							errA := seqRT.Dataset().UpdateAddEdge(id, u, v)
							errB := parRT.Dataset().UpdateAddEdge(id, u, v)
							if (errA == nil) != (errB == nil) {
								t.Fatalf("UA divergence on id %d: %v vs %v", id, errA, errB)
							}
						}
					}
				}
				src := pool[rng.Intn(len(pool))]
				q := testutil.BFSExtract(rng, src, rng.Intn(src.NumVertices()), 2+rng.Intn(8))
				var seqRes, parRes *Result
				var err error
				if step%3 == 0 {
					seqRes, err = seqRT.SupergraphQuery(q)
					if err != nil {
						t.Fatal(err)
					}
					parRes, err = parRT.SupergraphQuery(q)
				} else {
					seqRes, err = seqRT.SubgraphQuery(q)
					if err != nil {
						t.Fatal(err)
					}
					parRes, err = parRT.SubgraphQuery(q)
				}
				if err != nil {
					t.Fatal(err)
				}
				if !seqRes.Answer.Equal(parRes.Answer) {
					t.Fatalf("step %d: parallel answer %v != sequential %v",
						step, parRes.AnswerIDs(), seqRes.AnswerIDs())
				}
				if seqRes.Stats.SubIsoTests != parRes.Stats.SubIsoTests {
					t.Fatalf("step %d: test counts diverge: %d vs %d",
						step, seqRes.Stats.SubIsoTests, parRes.Stats.SubIsoTests)
				}
				if parRes.Stats.SubIsoTests > 0 && parRes.Stats.VerifyWorkers < 1 {
					t.Fatalf("step %d: VerifyWorkers = %d with %d tests",
						step, parRes.Stats.VerifyWorkers, parRes.Stats.SubIsoTests)
				}
			}
		})
	}
}

// TestParallelVerifyWithCache runs the cached GC+ pipeline with parallel
// verification against the cached sequential pipeline: pruning decisions
// depend on prior answers, so agreement here shows the parallel loop
// composes with the consistency machinery, not just the baseline.
func TestParallelVerifyWithCache(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pool := make([]*graph.Graph, 80)
	for i := range pool {
		pool[i] = testutil.RandomConnectedGraph(rng, 5+rng.Intn(10), 3, 0.15)
	}
	cfg := &cache.Config{Capacity: 8, WindowSize: 3}
	seqRT, err := NewRuntime(dataset.New(pool), Options{Algorithm: subiso.VF2{}, Cache: cfg, VerifyParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parRT, err := NewRuntime(dataset.New(pool), Options{Algorithm: subiso.VF2{}, Cache: cfg, VerifyParallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 80; step++ {
		src := pool[rng.Intn(len(pool))]
		q := testutil.BFSExtract(rng, src, rng.Intn(src.NumVertices()), 2+rng.Intn(6))
		a, err := seqRT.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parRT.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Answer.Equal(b.Answer) {
			t.Fatalf("step %d: cached parallel answer diverges", step)
		}
	}
}
