package core

import (
	"errors"

	"gcplus/internal/cache"
)

// RuntimeState is the exportable warm state of a Runtime: the full cache
// snapshot plus the learned per-test cost model. The durability
// subsystem (internal/persist) serializes it next to the dataset
// snapshot so a restarted shard resumes with the same pruning power and
// eviction signal it shut down with. Query metrics are deliberately not
// part of the state — a restart starts a fresh measurement window (the
// /stats uptime field tells the two apart).
type RuntimeState struct {
	// Cache is the cache snapshot; nil when caching is disabled.
	Cache *cache.Snapshot
	// AvgTestCost is the running mean model of one Method M sub-iso
	// test's cost, exported as Welford moments.
	AvgTestCostN    int64
	AvgTestCostMean float64
	AvgTestCostM2   float64
}

// ExportState snapshots the runtime's warm state. Like every Runtime
// method it must run on the owner goroutine; the returned state is
// immutable with respect to later runtime activity.
func (r *Runtime) ExportState() *RuntimeState {
	st := &RuntimeState{}
	st.AvgTestCostN, st.AvgTestCostMean, st.AvgTestCostM2 = r.avgTestCost.State()
	if r.cache != nil {
		st.Cache = r.cache.Export()
	}
	return st
}

// RestoreState rebuilds the runtime's warm state from an export. The
// runtime must be freshly constructed (NewRuntime over the restored
// dataset, no queries processed). A cache snapshot is required exactly
// when the runtime has a cache; the restored cache's AppliedSeq must not
// exceed the dataset's sequence number, since validation can only roll
// the cache forward.
func (r *Runtime) RestoreState(st *RuntimeState) error {
	if st == nil {
		return errors.New("core: nil runtime state")
	}
	r.avgTestCost.RestoreState(st.AvgTestCostN, st.AvgTestCostMean, st.AvgTestCostM2)
	if r.cache == nil {
		return nil
	}
	if st.Cache == nil {
		return errors.New("core: runtime has a cache but the state snapshot has none")
	}
	if st.Cache.AppliedSeq > r.ds.Seq() {
		return errors.New("core: cache snapshot is ahead of the dataset log")
	}
	return r.cache.Restore(st.Cache)
}
