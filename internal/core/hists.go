package core

import "gcplus/internal/obs"

// StageHists holds the runtime's per-stage latency histograms. Unlike
// the Welford aggregates in Metrics they carry the full latency
// distribution (tail percentiles for /metrics and the slow-query log),
// are never cleared by ResetMeasurements, and are safe to read while
// the owner goroutine records — so a scrape can walk them without
// entering the shard's job queue.
//
// Because ResetMeasurements preserves Metrics.Queries and the
// histograms are never reset, Query.Count() always equals
// Metrics.Queries — the invariant the serving layer's exposition tests
// pin.
type StageHists struct {
	// Query is end-to-end per-query processing time minus cache
	// maintenance (the paper's "query processing time").
	Query *obs.Histogram
	// Hit is hit-discovery time (GC+sub/GC+super scan or index probe).
	Hit *obs.Histogram
	// Verify is the wall-clock of the Method M verification loop;
	// VerifyCPU is the workers' summed busy time.
	Verify    *obs.Histogram
	VerifyCPU *obs.Histogram
	// Overhead is cache-maintenance time; Consistency is its
	// log-analysis/validation share.
	Overhead    *obs.Histogram
	Consistency *obs.Histogram
	// RepairVerify is the off-owner verification time of one repair
	// result (recorded at commit, one observation per repaired pair).
	RepairVerify *obs.Histogram
	// Plan is the planner's share of query time: plan-cache lookup plus,
	// on a miss, compilation and algorithm choice. All zeros when the
	// planner is off.
	Plan *obs.Histogram
}

func newStageHists() *StageHists {
	return &StageHists{
		Query:        obs.NewHistogram(),
		Hit:          obs.NewHistogram(),
		Verify:       obs.NewHistogram(),
		VerifyCPU:    obs.NewHistogram(),
		Overhead:     obs.NewHistogram(),
		Consistency:  obs.NewHistogram(),
		RepairVerify: obs.NewHistogram(),
		Plan:         obs.NewHistogram(),
	}
}

// observe records one finished query's stage durations. A non-zero
// traceID marks the query as trace-sampled: each stage histogram then
// cites it as the exemplar for the bucket this query landed in, which
// is the /metrics → /debug/traces bridge (spot a slow bucket, follow
// its exemplar to a full trace).
func (s *StageHists) observe(st *QueryStats, traceID uint64) {
	s.Query.Observe(st.QueryTime)
	s.Hit.Observe(st.HitTime)
	s.Verify.Observe(st.VerifyTime)
	s.VerifyCPU.Observe(st.VerifyCPUTime)
	s.Overhead.Observe(st.Overhead)
	s.Consistency.Observe(st.ConsistencyTime)
	s.Plan.Observe(st.PlanTime)
	if traceID != 0 {
		s.Query.SetExemplar(st.QueryTime, traceID)
		s.Hit.SetExemplar(st.HitTime, traceID)
		s.Verify.SetExemplar(st.VerifyTime, traceID)
		s.VerifyCPU.SetExemplar(st.VerifyCPUTime, traceID)
		s.Overhead.SetExemplar(st.Overhead, traceID)
		s.Consistency.SetExemplar(st.ConsistencyTime, traceID)
		s.Plan.SetExemplar(st.PlanTime, traceID)
	}
}

// StageHists returns the runtime's per-stage latency histograms. The
// histograms are live: recording continues while callers read them.
func (r *Runtime) StageHists() *StageHists { return r.hists }
