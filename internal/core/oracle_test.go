package core_test

// The differential consistency oracle: every cache configuration —
// CON, CON with background repair, EVI, and the strict-invalidation
// ablation — must produce answers bit-identical to a cache-disabled
// ground-truth runtime under randomized change plans and mixed
// sub/supergraph query workloads. This is the empirical form of
// Theorems 3 and 6 (no false positives, no false negatives) extended to
// the repair pipeline: repair restores only verified facts, so it must
// never be observable in answers, only in how few sub-iso tests they
// cost. A concurrent variant drives the sharded serving front-end with
// repair workers active against serialized update batches; run under
// -race it also proves the repair pipeline is data-race free.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"gcplus/internal/bitset"
	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/router"
	"gcplus/internal/subiso"
	"gcplus/internal/testutil"
)

// oracleSeeds are the seeds every oracle property runs under.
var oracleSeeds = []int64{1, 7, 42}

// oracleSystem is one runtime under test plus its private dataset copy.
type oracleSystem struct {
	name   string
	ds     *dataset.Dataset
	rt     *core.Runtime
	repair bool // drive the repair pipeline between steps
	stream bool // run every query through the OnAnswer streaming path
}

// newOracleSystems builds the ground-truth runtime plus every cache
// configuration over identical private copies of the initial graphs.
func newOracleSystems(t *testing.T, initial []*graph.Graph) (gt *oracleSystem, systems []*oracleSystem) {
	t.Helper()
	build := func(name string, cfg *cache.Config, repair bool, custom func(*core.Options)) *oracleSystem {
		cloned := make([]*graph.Graph, len(initial))
		for i, g := range initial {
			cloned[i] = g.Clone()
		}
		ds := dataset.New(cloned)
		opts := core.Options{Algorithm: subiso.VF2{}, Cache: cfg}
		if custom != nil {
			custom(&opts)
		}
		rt, err := core.NewRuntime(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		return &oracleSystem{name: name, ds: ds, rt: rt, repair: repair}
	}
	small := func(extra func(*cache.Config)) *cache.Config {
		cfg := &cache.Config{Capacity: 30, WindowSize: 5}
		if extra != nil {
			extra(cfg)
		}
		return cfg
	}
	planner := func(o *core.Options) { o.EnablePlanner = true }
	plannerNoCache := func(o *core.Options) { o.EnablePlanner = true; o.PlanCacheSize = -1 }
	gt = build("ground-truth", nil, false, nil)
	systems = []*oracleSystem{
		// The query index is on by default, so plain "CON" doubles as
		// the hit-index-on variant; "CON+noindex" pins the linear-scan
		// discovery path and "CON+nopaths" the index without its
		// path-signature postings.
		build("CON", small(nil), false, nil),
		build("CON+noindex", small(func(c *cache.Config) { c.DisableHitIndex = true }), false, nil),
		build("CON+nopaths", small(func(c *cache.Config) { c.HitIndexPathLen = -1 }), false, nil),
		build("CON+repair", small(func(c *cache.Config) { c.RepairQueue = 4096 }), true, nil),
		build("EVI", small(func(c *cache.Config) { c.Model = cache.ModelEVI }), false, nil),
		build("strict", small(func(c *cache.Config) { c.StrictInvalidation = true }), false, nil),
		build("strict+repair", small(func(c *cache.Config) {
			c.StrictInvalidation = true
			c.RepairQueue = 4096
		}), true, nil),
		// Planner variants: cost-based algorithm choice with and without
		// the compiled-plan cache must be answer-invisible.
		build("CON+planner", small(nil), false, planner),
		build("CON+planner+noplancache", small(nil), false, plannerNoCache),
	}
	// Streaming variants answer every query through the OnAnswer path
	// (full stream, never stopping): the emitted sequence must be the
	// ascending answer set, bit-identical to the exact path.
	stream := build("CON+stream", small(nil), false, nil)
	stream.stream = true
	streamPlan := build("CON+planner+stream", small(nil), false, planner)
	streamPlan.stream = true
	systems = append(systems, stream, streamPlan)
	return gt, systems
}

// oracleOps resolves n random change operations against the ground
// truth's current state; the identical resolved ops are then applied to
// every system. UA/UR dominate so validity bits churn.
func oracleOps(rng *rand.Rand, ds *dataset.Dataset, pool []*graph.Graph, n int) []changeplan.Op {
	ops := make([]changeplan.Op, 0, n)
	for tries := 0; len(ops) < n && tries < 64*n; tries++ {
		ids := ds.LiveIDs()
		switch rng.Intn(8) {
		case 0: // ADD
			ops = append(ops, changeplan.AddOp(pool[rng.Intn(len(pool))].Clone()))
		case 1: // DEL
			if len(ids) <= 4 {
				continue
			}
			ops = append(ops, changeplan.DeleteOp(ids[rng.Intn(len(ids))]))
		case 2, 3, 4: // UA
			id := ids[rng.Intn(len(ids))]
			g := ds.Graph(id)
			nv := g.NumVertices()
			if nv < 2 {
				continue
			}
			u, v := rng.Intn(nv), rng.Intn(nv)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			ops = append(ops, changeplan.AddEdgeOp(id, u, v))
		default: // UR
			id := ids[rng.Intn(len(ids))]
			g := ds.Graph(id)
			if g.NumEdges() == 0 {
				continue
			}
			es := g.EdgeList()
			e := es[rng.Intn(len(es))]
			ops = append(ops, changeplan.RemoveEdgeOp(id, int(e.U), int(e.V)))
		}
	}
	return ops
}

// oracleQuery draws a query: usually a fresh BFS extract from a live
// graph (the paper's Type A generation), sometimes a repeat of an
// earlier query so cache hits and the §6.3 optimal cases fire.
func oracleQuery(rng *rand.Rand, ds *dataset.Dataset, history []*graph.Graph) *graph.Graph {
	if len(history) > 0 && rng.Float64() < 0.4 {
		return history[rng.Intn(len(history))]
	}
	ids := ds.LiveIDs()
	g := ds.Graph(ids[rng.Intn(len(ids))])
	q := testutil.BFSExtract(rng, g, rng.Intn(g.NumVertices()), 1+rng.Intn(4))
	if q.NumVertices() == 0 {
		return graph.Path(g.Label(0))
	}
	return q
}

func TestDifferentialConsistencyOracle(t *testing.T) {
	for _, seed := range oracleSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			initial := make([]*graph.Graph, 24)
			for i := range initial {
				initial[i] = testutil.RandomConnectedGraph(rng, 4+rng.Intn(8), 4, 0.25)
			}
			gt, systems := newOracleSystems(t, initial)
			var history []*graph.Graph

			const steps = 70
			for step := 0; step < steps; step++ {
				// Randomized change plan: a batch lands before ~1/3 of
				// the queries, applied identically everywhere.
				if rng.Intn(3) == 0 {
					ops := oracleOps(rng, gt.ds, initial, 1+rng.Intn(4))
					for _, op := range ops {
						_, wantErr := op.Apply(gt.ds)
						for _, sys := range systems {
							if _, err := op.Apply(sys.ds); (err == nil) != (wantErr == nil) {
								t.Fatalf("step %d: %v diverged on %s: gt err=%v, got err=%v",
									step, op, sys.name, wantErr, err)
							}
						}
					}
				}

				// Drive the repair pipeline through its exported phases
				// on a random subset of steps: full drains, partial
				// drains and parallel verification all interleave with
				// queries and later invalidations.
				for _, sys := range systems {
					if !sys.repair || rng.Intn(2) == 0 {
						continue
					}
					sys.rt.Sync() // discover invalidations off the query path
					if rng.Intn(4) == 0 {
						sys.rt.Repair(0, 1) // drain fully
					} else {
						jobs := sys.rt.PlanRepairs(1 + rng.Intn(8))
						sys.rt.CommitRepairs(sys.rt.VerifyRepairs(jobs, 1+rng.Intn(3)))
					}
					testutil.RequireCacheIndex(t, sys.rt.Cache())
				}

				q := oracleQuery(rng, gt.ds, history)
				history = append(history, q)
				super := rng.Intn(2) == 1
				run := func(sys *oracleSystem) *bitset.Set {
					var res *core.Result
					var err error
					var streamed []int
					var opt core.QueryOptions
					if sys.stream {
						opt.OnAnswer = func(id int) bool {
							streamed = append(streamed, id)
							return true
						}
					}
					if super {
						res, err = sys.rt.SupergraphQueryCtx(context.Background(), q, opt)
					} else {
						res, err = sys.rt.SubgraphQueryCtx(context.Background(), q, opt)
					}
					if err != nil {
						t.Fatalf("step %d: %s query failed: %v", step, sys.name, err)
					}
					if sys.stream {
						if res.Stats.Truncated {
							t.Fatalf("step %d: %s full stream reported Truncated", step, sys.name)
						}
						if !equalIntSlices(streamed, res.Answer.Indices()) {
							t.Fatalf("step %d: %s streamed %v but answered %v",
								step, sys.name, streamed, res.Answer.Indices())
						}
					}
					return res.Answer
				}
				want := run(gt)
				for _, sys := range systems {
					if got := run(sys); !got.Equal(want) {
						t.Fatalf("step %d (super=%v, query %s): %s answered %v, ground truth %v",
							step, super, q.Name(), sys.name, got.Indices(), want.Indices())
					}
					testutil.RequireCacheIndex(t, sys.rt.Cache())
				}
			}

			// Final accounting: the repair systems must actually have
			// repaired something, or the property proved nothing.
			repaired := int64(0)
			for _, sys := range systems {
				if sys.repair {
					sys.rt.Sync()
					sys.rt.Repair(0, 2)
					st := sys.rt.CacheStats()
					repaired += st.RepairedBits
					if st.PendingRepairs != 0 {
						t.Fatalf("%s: %d pairs still pending after full repair", sys.name, st.PendingRepairs)
					}
				}
			}
			if repaired == 0 {
				t.Fatal("repair pipeline never restored a bit; oracle exercised nothing")
			}
			// Same for the planner: the 40%-repeat query stream must have
			// hit the compiled-plan cache, or the variant proved nothing.
			for _, sys := range systems {
				if sys.name == "CON+planner" && sys.rt.Metrics().PlanCacheHits == 0 {
					t.Fatal("CON+planner never hit the plan cache; oracle exercised nothing")
				}
			}
		})
	}
}

// TestOracleConcurrentRepair is the -race variant: a sharded server
// with background repair workers active serves concurrent sub/super
// queries from reader goroutines while the test goroutine applies
// serialized churn-heavy update batches. Every observed answer must be
// bit-identical to the cache-disabled ground truth at the epoch the
// answer reports.
func TestOracleConcurrentRepair(t *testing.T) {
	for _, seed := range oracleSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			concurrentOracleRound(t, seed, false, router.TransportLocal)
		})
	}
}

// TestOracleConcurrentLoopback re-runs the concurrent oracle with the
// router reaching its shards over the loopback TCP transport: the wire
// seam must not bend a single answer even under concurrent churn and
// repair. One seed keeps the wall-clock cost of the wire path bounded.
func TestOracleConcurrentLoopback(t *testing.T) {
	concurrentOracleRound(t, 42, false, router.TransportLoopback)
}

// TestOracleConcurrentPlanner is the same -race property with every
// shard's planner and plan cache on: concurrent plan reuse across
// repeated queries must never bend an answer.
func TestOracleConcurrentPlanner(t *testing.T) {
	for _, seed := range oracleSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			concurrentOracleRound(t, seed, true, router.TransportLocal)
		})
	}
}

func concurrentOracleRound(t *testing.T, seed int64, planner bool, transport string) {
	const (
		shards  = 3
		readers = 4
		batches = 12
		opsPer  = 4
	)
	rng := rand.New(rand.NewSource(seed))
	initial := make([]*graph.Graph, 36)
	for i := range initial {
		initial[i] = testutil.RandomConnectedGraph(rng, 4+rng.Intn(8), 4, 0.25)
	}
	srv, err := router.New(initial, router.Options{
		Shards:            shards,
		Method:            "VF2",
		EagerValidate:     true, // invalidations (and hence repair) fire right at update time
		RepairParallelism: 2,
		EnablePlanner:     planner,
		Transport:         transport,
		Cache:             &cache.Config{Capacity: 20, WindowSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mirrorGraphs := make([]*graph.Graph, len(initial))
	for i, g := range initial {
		mirrorGraphs[i] = g.Clone()
	}
	mirror := dataset.New(mirrorGraphs)
	gtRT, err := core.NewRuntime(mirror, core.Options{Algorithm: subiso.VF2{}})
	if err != nil {
		t.Fatal(err)
	}

	var queries []*graph.Graph
	for i := 0; i < 8; i++ {
		q := testutil.BFSExtract(rng, initial[rng.Intn(len(initial))], 0, 1+rng.Intn(3))
		if q.NumVertices() > 0 {
			queries = append(queries, q)
		}
	}
	if len(queries) == 0 {
		t.Fatal("no queries generated")
	}

	// expected[e][qi] is the ground-truth answer at epoch e (odd qi run
	// as supergraph queries); written only by the test goroutine, read
	// after the readers join.
	expected := make([][][]int, batches+1)
	compute := func() [][]int {
		out := make([][]int, len(queries))
		for qi, q := range queries {
			var res *core.Result
			var err error
			if qi%2 == 0 {
				res, err = gtRT.SubgraphQuery(q)
			} else {
				res, err = gtRT.SupergraphQuery(q)
			}
			if err != nil {
				t.Error(err)
				return nil
			}
			out[qi] = res.AnswerIDs()
		}
		return out
	}
	expected[0] = compute()

	type observation struct {
		qi    int
		epoch uint64
		ids   []int
	}
	observations := make([][]observation, readers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(r)))
			for !stop.Load() {
				qi := rng.Intn(len(queries))
				var res *router.QueryResult
				var err error
				if qi%2 == 0 {
					res, err = srv.SubgraphQuery(queries[qi])
				} else {
					res, err = srv.SupergraphQuery(queries[qi])
				}
				if err != nil {
					t.Error(err)
					return
				}
				observations[r] = append(observations[r], observation{qi: qi, epoch: res.Epoch, ids: res.IDs})
			}
		}(r)
	}

	for b := 1; b <= batches; b++ {
		ops := oracleOps(rng, mirror, initial, opsPer)
		type expOp struct {
			id int
			ok bool
		}
		exp := make([]expOp, len(ops))
		for i, op := range ops {
			id, err := op.Apply(mirror)
			exp[i] = expOp{id: id, ok: err == nil}
		}
		res, err := srv.Update(ops)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ops {
			if (res.Ops[i].Err == nil) != exp[i].ok || (exp[i].ok && res.Ops[i].ID != exp[i].id) {
				t.Fatalf("batch %d op %d (%v): server %+v, mirror %+v", b, i, ops[i], res.Ops[i], exp[i])
			}
		}
		expected[b] = compute()
	}
	stop.Store(true)
	wg.Wait()

	total := 0
	for r, obs := range observations {
		for _, o := range obs {
			total++
			if o.epoch > uint64(batches) {
				t.Fatalf("reader %d: impossible epoch %d", r, o.epoch)
			}
			if !equalIntSlices(o.ids, expected[o.epoch][o.qi]) {
				t.Fatalf("reader %d query %d at epoch %d: got %v, ground truth %v",
					r, o.qi, o.epoch, o.ids, expected[o.epoch][o.qi])
			}
		}
	}
	if total == 0 {
		t.Fatal("no concurrent observations recorded")
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if planner && st.PlanCacheHits == 0 {
		t.Fatal("planner round never hit the plan cache; property exercised nothing")
	}
	t.Logf("seed %d: verified %d concurrent answers across %d epochs; repaired_bits=%d pending=%d validity=%.3f plan_hits=%d",
		seed, total, batches+1, st.RepairedBits, st.PendingRepairs, st.ValidityRatio, st.PlanCacheHits)
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
