package core

import (
	"time"

	"gcplus/internal/stats"
)

// Metrics aggregates per-query statistics across a runtime's lifetime.
// The benchmark harness derives every series of Figures 4–6 and the §7.2
// insight numbers from one Metrics snapshot per configuration.
type Metrics struct {
	// Queries is the number of queries processed.
	Queries int64
	// MeasuredQueries is the number folded into the time/test averages
	// (warm-up queries can be excluded via ResetMeasurements).
	MeasuredQueries int64

	// QueryTime aggregates per-query processing time (seconds).
	QueryTime stats.Running
	// VerifyTime aggregates the Method M share of processing time (wall
	// clock of the possibly parallel verification loop).
	VerifyTime stats.Running
	// VerifyCPU aggregates the verification workers' summed busy time per
	// query; VerifyCPU/VerifyTime is the realized intra-query speedup.
	VerifyCPU stats.Running
	// HitTime aggregates hit-discovery time.
	HitTime stats.Running
	// Overhead aggregates cache-maintenance time per query.
	Overhead stats.Running
	// ConsistencyTime aggregates the log-analysis/validation (or purge)
	// share of Overhead.
	ConsistencyTime stats.Running
	// SubIsoTests aggregates the number of Method M tests per query.
	SubIsoTests stats.Running
	// TestsSaved aggregates per-query spared tests.
	TestsSaved stats.Running
	// HitCandidates aggregates the per-query number of entries hit
	// discovery examined (index candidates, or every same-kind entry
	// when the query index is off).
	HitCandidates stats.Running
	// HitScanned aggregates the per-query cache+window size at hit
	// discovery; HitCandidates/HitScanned is the index's selectivity.
	HitScanned stats.Running
	// PlanTime aggregates the planner's per-query share (zero when off).
	PlanTime stats.Running

	// Hit-type counters (§7.2 insight metrics).

	// IsoHitQueries counts queries that discovered at least one
	// isomorphic cached query ("exact-match cache hits" in §7.2).
	IsoHitQueries int64
	// ExactHits counts isomorphic cache hits that fired the §6.3 optimal
	// case (zero sub-iso tests by construction).
	ExactHits int64
	// EmptyShortcuts counts §6.3 second-optimal-case firings.
	EmptyShortcuts int64
	// ContainingHits counts containment hits (cached query ⊇ g).
	ContainingHits int64
	// ContainedHits counts containment hits (cached query ⊆ g).
	ContainedHits int64
	// ZeroTestQueries counts queries answered without any sub-iso test.
	ZeroTestQueries int64
	// PlanCacheHits/PlanCacheMisses count compiled-plan cache outcomes
	// for planner-enabled queries (both zero when the planner is off; a
	// planner with plan caching disabled counts every query a miss).
	PlanCacheHits   int64
	PlanCacheMisses int64
	// TruncatedQueries counts streaming queries that stopped early
	// (Limit reached or OnAnswer returned false).
	TruncatedQueries int64

	// Repair-pipeline counters (updated by the repair phases, which run
	// on the owner goroutine like query processing).

	// RepairPlanned counts invalidated pairs handed to verification.
	RepairPlanned int64
	// RepairedBits counts validity bits restored by CommitRepairs.
	RepairedBits int64
	// RepairStale counts verified results dropped at commit because the
	// graph version changed mid-flight or the entry was evicted.
	RepairStale int64
	// RepairCPU sums the repair workers' verification time — CPU spent
	// off the query path buying back cache validity.
	RepairCPU time.Duration
}

func (m *Metrics) fold(st *QueryStats) {
	m.Queries++
	m.MeasuredQueries++
	m.QueryTime.AddDuration(st.QueryTime)
	m.VerifyTime.AddDuration(st.VerifyTime)
	m.VerifyCPU.AddDuration(st.VerifyCPUTime)
	m.HitTime.AddDuration(st.HitTime)
	m.Overhead.AddDuration(st.Overhead)
	m.ConsistencyTime.AddDuration(st.ConsistencyTime)
	m.SubIsoTests.Add(float64(st.SubIsoTests))
	m.TestsSaved.Add(float64(st.TestsSaved))
	m.HitCandidates.Add(float64(st.HitCandidates))
	m.HitScanned.Add(float64(st.HitScanned))
	m.PlanTime.AddDuration(st.PlanTime)
	if st.PlanAlgorithm != "" {
		if st.PlanCached {
			m.PlanCacheHits++
		} else {
			m.PlanCacheMisses++
		}
	}
	if st.Truncated {
		m.TruncatedQueries++
	}
	if st.IsoHits > 0 {
		m.IsoHitQueries++
	}
	if st.ExactHit {
		m.ExactHits++
	}
	if st.EmptyShortcut {
		m.EmptyShortcuts++
	}
	m.ContainingHits += int64(st.ContainingHits)
	m.ContainedHits += int64(st.ContainedHits)
	if st.SubIsoTests == 0 {
		m.ZeroTestQueries++
	}
}

// Metrics returns a copy of the aggregated metrics.
func (r *Runtime) Metrics() Metrics { return r.m }

// ResetMeasurements clears the aggregates while keeping the cache warm —
// the evaluation "allows one Window (20 queries) before starting
// measuring GC+'s performance" (§7.1).
func (r *Runtime) ResetMeasurements() {
	queries := r.m.Queries
	r.m = Metrics{Queries: queries}
}

// MeanQueryTime returns the mean per-query processing time.
func (m *Metrics) MeanQueryTime() time.Duration {
	return time.Duration(m.QueryTime.Mean() * float64(time.Second))
}

// MeanOverhead returns the mean per-query cache-maintenance time.
func (m *Metrics) MeanOverhead() time.Duration {
	return time.Duration(m.Overhead.Mean() * float64(time.Second))
}

// MeanConsistency returns the mean per-query consistency share of the
// overhead (CON's Algorithms 1+2, EVI's purge).
func (m *Metrics) MeanConsistency() time.Duration {
	return time.Duration(m.ConsistencyTime.Mean() * float64(time.Second))
}

// MeanSubIsoTests returns the mean number of sub-iso tests per query.
func (m *Metrics) MeanSubIsoTests() float64 { return m.SubIsoTests.Mean() }

// RunningSnapshot summarizes one Running accumulator with plain fields so
// metrics serialize to JSON (stats.Running keeps its state unexported).
type RunningSnapshot struct {
	// N is the number of observations folded in.
	N int64 `json:"n"`
	// Mean and Std are the running mean and population standard
	// deviation (seconds for the timing accumulators).
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

func snap(r stats.Running) RunningSnapshot {
	return RunningSnapshot{N: r.N(), Mean: r.Mean(), Std: r.Std()}
}

// MetricsSnapshot is a JSON-serializable view of Metrics; serving
// front-ends expose one per runtime shard on their stats endpoint.
type MetricsSnapshot struct {
	Queries         int64 `json:"queries"`
	MeasuredQueries int64 `json:"measured_queries"`

	QueryTimeSec       RunningSnapshot `json:"query_time_sec"`
	VerifyTimeSec      RunningSnapshot `json:"verify_time_sec"`
	VerifyCPUSec       RunningSnapshot `json:"verify_cpu_sec"`
	HitTimeSec         RunningSnapshot `json:"hit_time_sec"`
	OverheadSec        RunningSnapshot `json:"overhead_sec"`
	ConsistencyTimeSec RunningSnapshot `json:"consistency_time_sec"`
	SubIsoTests        RunningSnapshot `json:"subiso_tests"`
	TestsSaved         RunningSnapshot `json:"tests_saved"`
	HitCandidates      RunningSnapshot `json:"hit_candidates"`
	HitScanned         RunningSnapshot `json:"hit_scanned"`
	PlanTimeSec        RunningSnapshot `json:"plan_time_sec"`

	IsoHitQueries    int64 `json:"iso_hit_queries"`
	ExactHits        int64 `json:"exact_hits"`
	EmptyShortcuts   int64 `json:"empty_shortcuts"`
	ContainingHits   int64 `json:"containing_hits"`
	ContainedHits    int64 `json:"contained_hits"`
	ZeroTestQueries  int64 `json:"zero_test_queries"`
	PlanCacheHits    int64 `json:"plan_cache_hits"`
	PlanCacheMisses  int64 `json:"plan_cache_misses"`
	TruncatedQueries int64 `json:"truncated_queries"`

	RepairPlanned int64   `json:"repair_planned"`
	RepairedBits  int64   `json:"repaired_bits"`
	RepairStale   int64   `json:"repair_stale"`
	RepairCPUSec  float64 `json:"repair_cpu_sec"`
}

// Snapshot converts the metrics to their JSON-serializable form.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Queries:            m.Queries,
		MeasuredQueries:    m.MeasuredQueries,
		QueryTimeSec:       snap(m.QueryTime),
		VerifyTimeSec:      snap(m.VerifyTime),
		VerifyCPUSec:       snap(m.VerifyCPU),
		HitTimeSec:         snap(m.HitTime),
		OverheadSec:        snap(m.Overhead),
		ConsistencyTimeSec: snap(m.ConsistencyTime),
		SubIsoTests:        snap(m.SubIsoTests),
		TestsSaved:         snap(m.TestsSaved),
		HitCandidates:      snap(m.HitCandidates),
		HitScanned:         snap(m.HitScanned),
		PlanTimeSec:        snap(m.PlanTime),
		IsoHitQueries:      m.IsoHitQueries,
		ExactHits:          m.ExactHits,
		EmptyShortcuts:     m.EmptyShortcuts,
		ContainingHits:     m.ContainingHits,
		ContainedHits:      m.ContainedHits,
		ZeroTestQueries:    m.ZeroTestQueries,
		PlanCacheHits:      m.PlanCacheHits,
		PlanCacheMisses:    m.PlanCacheMisses,
		TruncatedQueries:   m.TruncatedQueries,
		RepairPlanned:      m.RepairPlanned,
		RepairedBits:       m.RepairedBits,
		RepairStale:        m.RepairStale,
		RepairCPUSec:       m.RepairCPU.Seconds(),
	}
}

// HitRate returns the fraction of measured queries answered without a
// single Method M sub-iso test (the §6.3 optimal cases plus fully pruned
// candidate sets) — the serving layer's headline per-shard cache metric.
// MeasuredQueries is the denominator because ZeroTestQueries, like every
// aggregate, is cleared by ResetMeasurements while Queries is not.
func (m *Metrics) HitRate() float64 {
	if m.MeasuredQueries == 0 {
		return 0
	}
	return float64(m.ZeroTestQueries) / float64(m.MeasuredQueries)
}
