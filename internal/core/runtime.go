// Package core implements GC+'s Query Processing Runtime (§4 and §6 of
// the paper): the GC+sub and GC+super processors that discover
// subgraph/supergraph relations between a new query and cached queries,
// the Candidate Set Pruner realizing formulas (1)–(5), the two optimal
// cases of §6.3 (isomorphic cache hit and empty-answer shortcut), and the
// orchestration that keeps the cache consistent with the dataset log
// before every query (EVI purge or CON validation).
//
// The pruner's output is provably exact — Theorems 3 and 6 of the paper:
// no false positives (every returned graph either passed a sub-iso test
// or is implied by a still-valid cached positive) and no false negatives
// (a graph is only exempted from testing when a still-valid cached fact
// makes its answer certain). The package's property tests check GC+
// against brute-force ground truth under randomized query/change
// interleavings.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gcplus/internal/bitset"
	"gcplus/internal/cache"
	"gcplus/internal/dataset"
	"gcplus/internal/feature"
	"gcplus/internal/graph"
	"gcplus/internal/stats"
	"gcplus/internal/subiso"
)

// Options configures a Runtime.
type Options struct {
	// Algorithm is Method M's sub-iso implementation (required).
	Algorithm subiso.Algorithm
	// HitAlgorithm decides containment between *query* graphs during hit
	// discovery; defaults to VF2+ (queries are small, VF2+ is robustly
	// fast on them). Its invocations are GC+ overhead, never counted as
	// Method M sub-iso tests.
	HitAlgorithm subiso.Algorithm
	// Cache configures the graph cache. Nil disables caching entirely,
	// yielding the pure Method M baseline of the evaluation.
	Cache *cache.Config
	// VerifyParallelism bounds the worker pool that verifies the pruned
	// candidate set within one query: candidates are split into chunks
	// tested concurrently, each worker with its own compiled-matcher
	// scratch, and the per-worker answer bitsets are merged. 0 (the
	// default) means GOMAXPROCS; 1 keeps verification sequential.
	VerifyParallelism int
	// EnablePlanner turns on the cost-based per-query planner: each query
	// gets a plan choosing the Method M algorithm (VF2/VF2+/GQL) and the
	// verification parallelism from measured per-kind cost moments, and
	// compiled plans (matchers, fingerprint, hit-classification memo) are
	// cached under the query's canonical key so isomorphic repeats skip
	// compilation and planning entirely. Off by default; answers are
	// bit-identical either way (every candidate algorithm is exact).
	EnablePlanner bool
	// PlanCacheSize bounds the compiled-plan cache (entries, per kind
	// combined). 0 means DefaultPlanCacheSize when the planner is on;
	// negative disables plan caching while keeping the planner's
	// algorithm and parallelism choices.
	PlanCacheSize int
}

// Runtime executes subgraph/supergraph queries against a dataset,
// optionally through the GC+ cache. It is not safe for concurrent use;
// callers own serialization (the evaluation harness is single-streamed,
// like the paper's query workloads). Internally, though, one query may
// fan its verification loop out to VerifyParallelism workers — the
// dataset snapshot and graph values are immutable, so the only shared
// mutable state is the per-worker answer bitsets, merged after the join.
type Runtime struct {
	ds        *dataset.Dataset
	algo      subiso.Algorithm
	hitAlgo   subiso.Algorithm
	cache     *cache.Cache // nil when caching is disabled
	verifyPar int          // resolved VerifyParallelism (>= 1)

	// avgTestCost tracks the observed mean cost of one Method M sub-iso
	// test; it seeds cost estimates for entries admitted with zero tests.
	avgTestCost stats.Running

	// planner is the cost-based per-query planner plus its compiled-plan
	// cache (nil unless Options.EnablePlanner). plan is the current
	// query's plan, set at the top of process; the runtime is
	// single-threaded per query, so one field suffices.
	planner *planner
	plan    *queryPlan

	m     Metrics
	hists *StageHists
}

// NewRuntime builds a Runtime over the dataset.
func NewRuntime(ds *dataset.Dataset, opts Options) (*Runtime, error) {
	if ds == nil {
		return nil, errors.New("core: nil dataset")
	}
	if opts.Algorithm == nil {
		return nil, errors.New("core: Options.Algorithm is required")
	}
	r := &Runtime{
		ds:        ds,
		algo:      opts.Algorithm,
		hitAlgo:   opts.HitAlgorithm,
		verifyPar: opts.VerifyParallelism,
		hists:     newStageHists(),
	}
	if r.hitAlgo == nil {
		r.hitAlgo = subiso.VF2Plus{}
	}
	if r.verifyPar <= 0 {
		r.verifyPar = runtime.GOMAXPROCS(0)
	}
	if opts.EnablePlanner {
		size := opts.PlanCacheSize
		if size == 0 {
			size = DefaultPlanCacheSize
		}
		if size < 0 {
			size = 0
		}
		r.planner = newPlanner(r.algo, r.hitAlgo, size)
	}
	if opts.Cache != nil {
		// Fail loudly and gracefully on a mistyped policy or model
		// instead of letting the first eviction silently score like PIN.
		if err := opts.Cache.Validate(); err != nil {
			return nil, err
		}
		r.cache = cache.New(*opts.Cache)
	}
	return r, nil
}

// Dataset returns the runtime's dataset.
func (r *Runtime) Dataset() *dataset.Dataset { return r.ds }

// CacheEnabled reports whether GC+ caching is active.
func (r *Runtime) CacheEnabled() bool { return r.cache != nil }

// CacheSize returns the number of admitted cache entries (0 if disabled).
func (r *Runtime) CacheSize() int {
	if r.cache == nil {
		return 0
	}
	return r.cache.Size()
}

// Algorithm returns Method M's algorithm.
func (r *Runtime) Algorithm() subiso.Algorithm { return r.algo }

// Result is the outcome of one query.
type Result struct {
	// Answer is the answer set as dataset graph ids.
	Answer *bitset.Set
	// Stats describes how the answer was obtained.
	Stats QueryStats
}

// AnswerIDs returns the answer as a sorted id slice.
func (res *Result) AnswerIDs() []int { return res.Answer.Indices() }

// QueryStats instruments one query execution.
type QueryStats struct {
	// Kind is the query kind.
	Kind cache.Kind
	// CandidatesBefore is |CS_M(g)|, the live dataset size.
	CandidatesBefore int
	// SubIsoTests is the number of Method M sub-iso tests executed after
	// pruning (|CS_GC+|; the paper's headline count metric).
	SubIsoTests int
	// TestsSaved = CandidatesBefore − SubIsoTests.
	TestsSaved int
	// ContainingHits counts cached queries found to contain g.
	ContainingHits int
	// ContainedHits counts cached queries found to be contained in g.
	ContainedHits int
	// IsoHits counts cached queries discovered to be isomorphic to g
	// (the paper's "exact-match cache hits"; only the fully valid ones
	// fire the §6.3 optimal case and yield zero sub-iso tests).
	IsoHits int
	// ExactHit reports an isomorphic cache hit (§6.3 first optimal case;
	// it fires only when the hit entry is fully valid).
	ExactHit bool
	// EmptyShortcut reports the §6.3 second optimal case (certain-empty
	// answer without any sub-iso test).
	EmptyShortcut bool
	// QueryTime is the end-to-end processing time excluding Overhead.
	QueryTime time.Duration
	// VerifyTime is the Method M portion of QueryTime (wall clock: under
	// parallel verification this is the fan-out/join span).
	VerifyTime time.Duration
	// VerifyCPUTime sums the verification workers' busy time; it equals
	// VerifyTime when sequential, and VerifyCPUTime/VerifyTime is the
	// realized intra-query parallel speedup.
	VerifyCPUTime time.Duration
	// VerifyWorkers is the number of workers the verification loop fanned
	// out to (1 = sequential, 0 = nothing left to verify).
	VerifyWorkers int
	// HitTime is the hit-discovery portion of QueryTime.
	HitTime time.Duration
	// HitScanned is the number of cache+window entries present at hit
	// discovery — the work a linear scan would do.
	HitScanned int
	// HitCandidates is the number of entries hit discovery actually
	// examined with fingerprint (and possibly sub-iso) checks: the
	// query index's candidate set when the index is on, every same-kind
	// entry when it is off. HitCandidates/HitScanned is the index's
	// realized selectivity.
	HitCandidates int
	// Overhead is cache-maintenance time: consistency (log analysis +
	// validation or purge) plus window/cache updates. Figure 6's
	// "Overhead" series.
	Overhead time.Duration
	// ConsistencyTime is the log-analysis + validation (or purge) part
	// of Overhead; the paper reports it below 1% of CON's overhead.
	ConsistencyTime time.Duration
	// CacheBypassed reports that the query ran with QueryOptions.
	// BypassCache while a cache was configured — pure Method M, no
	// admission (degraded-mode serving).
	CacheBypassed bool
	// PlanTime is the planner's share of QueryTime: plan-cache lookup
	// plus, on a miss, compilation and algorithm choice. Zero when the
	// planner is off.
	PlanTime time.Duration
	// PlanAlgorithm names the Method M algorithm the planner chose for
	// this query (empty when the planner is off).
	PlanAlgorithm string
	// PlanCached reports that the query reused a cached compiled plan
	// (pointer-identical or structurally equal repeat).
	PlanCached bool
	// Truncated reports a streaming query stopped early — by
	// QueryOptions.Limit or an OnAnswer callback returning false — so
	// the answer may be a proper prefix of the full answer set. Truncated
	// answers are never admitted to (or refreshed into) the cache.
	Truncated bool
}

// QueryOptions tunes one query execution. The zero value is the
// normal path: cache on, verification parallelism as configured.
type QueryOptions struct {
	// BypassCache answers the query by pure Method M verification over
	// the live snapshot: no consistency sync, no hit discovery, no
	// admission. The answer is sound by construction (every candidate
	// is tested), which is what makes cache bypass a safe degradation
	// step when the consistency machinery is backlogged.
	BypassCache bool
	// MaxVerifyParallelism, when > 0, caps the verification worker pool
	// below the runtime's configured parallelism — the pressure
	// controller's first degradation step.
	MaxVerifyParallelism int
	// Limit, when > 0, streams verification: candidates are examined in
	// ascending id order, interleaved with the sure positives of formula
	// (1), and the query returns as soon as Limit answers are known —
	// the answer is then exactly the Limit smallest ids of the full
	// answer set. Stats.Truncated reports whether anything was cut; a
	// truncated answer is not admitted to the cache. 0 keeps the default
	// exact-answer mode.
	Limit int
	// OnAnswer, when non-nil, also streams: it is invoked with each
	// answer id, in ascending order, the moment the id is known to be an
	// answer (before verification of the remaining candidates).
	// Returning false stops the query early, like hitting Limit. The
	// callback runs on the query's goroutine and must not call back into
	// the Runtime. Streaming verification is sequential: Limit/OnAnswer
	// disable the intra-query worker pool for this query.
	OnAnswer func(id int) bool
	// TraceID, when non-zero, is the sampled distributed trace this
	// query belongs to; the stage histograms cite it as their exemplar.
	// In-process only — the serving layer propagates trace context on
	// its own wire field and sets this per host.
	TraceID uint64
}

// streaming reports whether the options request streaming verification.
func (o QueryOptions) streaming() bool { return o.Limit > 0 || o.OnAnswer != nil }

// CancelError reports a query abandoned at a cooperative cancellation
// checkpoint, naming the stage that observed the cancelled context.
type CancelError struct {
	Stage string // "sync", "hit" or "verify" (the serving layer adds "queue")
	Err   error  // ctx.Err(): Canceled or DeadlineExceeded
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("core: query cancelled during %s: %v", e.Stage, e.Err)
}

func (e *CancelError) Unwrap() error { return e.Err }

// cancelCheckInterval is how many candidates a verification loop tests
// between context checks: frequent enough to bound overrun past a
// deadline to a handful of sub-iso tests, rare enough that the
// non-blocking channel poll never shows up in profiles.
const cancelCheckInterval = 32

// SubgraphQuery answers "which live dataset graphs contain g?".
func (r *Runtime) SubgraphQuery(g *graph.Graph) (*Result, error) {
	return r.process(context.Background(), g, cache.KindSub, QueryOptions{})
}

// SupergraphQuery answers "which live dataset graphs are contained in g?".
func (r *Runtime) SupergraphQuery(g *graph.Graph) (*Result, error) {
	return r.process(context.Background(), g, cache.KindSuper, QueryOptions{})
}

// SubgraphQueryCtx is SubgraphQuery with cooperative cancellation and
// per-query options. Cancellation is checkpoint-based: the query
// returns a *CancelError at the next checkpoint after ctx is done,
// leaving the cache structurally intact (credits already granted to
// hit entries stand — they record pruning work that really happened).
func (r *Runtime) SubgraphQueryCtx(ctx context.Context, g *graph.Graph, opt QueryOptions) (*Result, error) {
	return r.process(ctx, g, cache.KindSub, opt)
}

// SupergraphQueryCtx is SupergraphQuery with cooperative cancellation
// and per-query options.
func (r *Runtime) SupergraphQueryCtx(ctx context.Context, g *graph.Graph, opt QueryOptions) (*Result, error) {
	return r.process(ctx, g, cache.KindSuper, opt)
}

func (r *Runtime) process(ctx context.Context, g *graph.Graph, kind cache.Kind, opt QueryOptions) (*Result, error) {
	if g == nil {
		return nil, errors.New("core: nil query graph")
	}
	if err := ctx.Err(); err != nil {
		return nil, &CancelError{Stage: "sync", Err: err}
	}
	start := time.Now()
	st := QueryStats{Kind: kind}
	useCache := r.cache != nil && !opt.BypassCache
	st.CacheBypassed = r.cache != nil && opt.BypassCache

	// Planning: resolve (or reuse) the compiled plan for this query. The
	// plan carries the verify matcher for the chosen algorithm plus the
	// hit-discovery artifacts (fingerprint, both query-to-query matchers,
	// relation memo), so a plan-cache hit skips every per-query
	// compilation below. Sound for bypassed queries too: plan artifacts
	// are pure compile state, independent of cache contents.
	r.plan = nil
	if r.planner != nil {
		pt0 := time.Now()
		r.plan = r.planner.planFor(g, kind, &st)
		st.PlanTime = time.Since(pt0)
		st.PlanAlgorithm = r.plan.verify.Name()
		if r.cache != nil {
			// Seed the query index with the plan's memoized path
			// signatures: on a plan hit, indexed hit discovery then skips
			// the signature extraction — its dominant per-query cost.
			r.cache.PrimeQuerySigs(g, r.plan.sigsFor(r.cache.QuerySigPathLen()))
		}
	}

	// Consistency point: reconcile cache with the dataset log (§4: the
	// Dataset Manager first identifies whether the dataset has changed;
	// if so the Cache Validator is triggered). A bypassed query skips
	// it: the log suffix keeps accumulating and the next cached query
	// reconciles the whole of it.
	if useCache {
		r.syncCache(&st)
	}

	live := r.ds.LiveSnapshot()
	csm := live.Clone() // CS_M(g): Method M would test the whole dataset
	st.CandidatesBefore = csm.Count()

	var (
		direct     []*cache.Entry // entries whose valid positives transfer to g
		restrict   []*cache.Entry // entries bounding g's possible answers
		iso        *cache.Entry   // an entry isomorphic to g, if discovered
		answerSure *bitset.Set    // Answer_sub(g) of formula (1)
	)
	if useCache {
		ht0 := time.Now()
		direct, restrict, iso = r.findHits(g, kind, &st)
		st.HitTime = time.Since(ht0)

		// §6.3 optimal case 1: isomorphic hit. Equal vertex and edge
		// counts plus one-directional containment force an isomorphism,
		// so if the entry is fully valid its cached answer (restricted
		// to live graphs) is g's answer.
		if iso != nil && iso.FullyValid(live) {
			st.ExactHit = true
			iso.Credit(st.CandidatesBefore, r.cache.Tick())
			ans := iso.Answer.Clone()
			ans.And(live)
			if opt.streaming() {
				ans = streamClip(ans, opt, &st)
			}
			st.TestsSaved = st.CandidatesBefore
			return r.finish(g, kind, ans, live, iso, direct, restrict, true, opt.TraceID, start, &st)
		}

		// §6.3 optimal case 2: certain-empty answer. A restrict-side hit
		// with no (still-live) positive and full validity proves the
		// answer empty: any positive for g would imply one for e.Query.
		for _, e := range restrict {
			if e.FullyValid(live) && !e.Answer.Intersects(live) {
				st.EmptyShortcut = true
				e.Credit(st.CandidatesBefore, r.cache.Tick())
				st.TestsSaved = st.CandidatesBefore
				return r.finish(g, kind, bitset.New(0), live, iso, direct, restrict, true, opt.TraceID, start, &st)
			}
		}

		// Formulas (1)+(2): sure positives from direct hits — only
		// dataset graphs that are both answered and still valid
		// transfer, and the sure positives need no test. Pruning runs
		// incrementally so each entry is credited with its *marginal*
		// contribution: the tests it spared beyond what earlier hits
		// already spared. (Crediting every entry against the unpruned
		// set double-counts overlapping hits, inflating R and skewing
		// the PIN/PINC/HD eviction signal; with marginal credits the
		// per-query credit sum never exceeds CandidatesBefore.)
		answerSure = bitset.New(st.CandidatesBefore)
		for _, e := range direct {
			va := e.ValidAnswer()
			va.And(live)
			e.Credit(va.IntersectionCount(csm), r.cache.Tick())
			answerSure.Or(va)
			csm.AndNot(va)
		}

		// Formulas (4)+(5): every restrict hit bounds the candidate set
		// by complement(CGvalid) ∪ Answer — graphs validly *not* related
		// to the cached query cannot relate to g either. Marginal
		// crediting again: each entry is credited with the candidates it
		// removed from the already-pruned set, not with its pruning
		// power against the whole dataset.
		for _, e := range restrict {
			pa := e.PossibleAnswer(live)
			before := csm.Count()
			csm.And(pa)
			e.Credit(before-csm.Count(), r.cache.Tick())
		}
	}

	// Cancellation checkpoint between hit discovery and verification:
	// abandoning here costs nothing — credits already granted record
	// pruning work that really happened, and no admission has run.
	if err := ctx.Err(); err != nil {
		return nil, &CancelError{Stage: "hit", Err: err}
	}

	// Verification: Method M sub-iso tests over the pruned candidate set,
	// through the compiled matcher and (when configured) the intra-query
	// worker pool. The planner may cap the pool further: when the
	// measured per-test cost says the whole candidate set verifies in
	// less than the fan-out/join overhead, parallelism only adds latency.
	maxPar := opt.MaxVerifyParallelism
	if r.plan != nil {
		if c := r.planner.parallelCap(kind, r.plan.algoIdx, csm.Count()); c > 0 && (maxPar == 0 || c < maxPar) {
			maxPar = c
		}
	}
	var (
		verified *bitset.Set
		err      error
	)
	if opt.streaming() {
		// Streaming folds formula (3) into the emission loop (sure
		// positives interleave with verified candidates in id order).
		verified, err = r.streamVerify(ctx, g, kind, answerSure, csm, &st, opt)
		answerSure = nil
	} else {
		verified, err = r.verify(ctx, g, kind, csm, &st, maxPar)
	}
	if err != nil {
		return nil, err
	}
	// Feed the per-test cost estimator only from samples that measure
	// what it models: bypassed queries run outside the cache books, and
	// tiny candidate sets are dominated by fixed per-query overhead
	// (matcher compile, pool fan-out), so both would skew the costEst
	// used for HD/PINC admission scoring and the planner's algorithm
	// choice.
	if !st.CacheBypassed && st.SubIsoTests >= minCostSampleTests {
		perTest := st.VerifyCPUTime.Seconds() / float64(st.SubIsoTests)
		r.avgTestCost.Add(perTest)
		if r.plan != nil {
			r.planner.note(kind, r.plan.algoIdx, perTest)
		}
	}

	// Formula (3): final answer = verified ∪ sure positives.
	if answerSure != nil {
		verified.Or(answerSure)
	}
	return r.finish(g, kind, verified, live, iso, direct, restrict, useCache, opt.TraceID, start, &st)
}

// minVerifyChunk is the fewest candidates worth handing one verification
// worker: below this, goroutine spawn and bitset merge outweigh the tests.
const minVerifyChunk = 8

// verify runs Method M over the pruned candidate set through a matcher
// compiled once for the query, fanning contiguous candidate chunks out to
// a bounded worker pool when r.verifyPar and the candidate count allow.
// Each worker forks the compiled matcher (own scratch, shared compiled
// artifacts) and fills a private bitset; the chunks partition the ids, so
// the final union is exactly the sequential answer.
//
// Cancellation is cooperative: every cancelCheckInterval tests the loop
// polls ctx's done channel (a non-blocking select against a channel
// that is nil for context.Background, so the fault-free path pays one
// predictable branch). A cancelled query returns *CancelError with
// stage "verify"; partial worker bitsets are discarded.
func (r *Runtime) verify(ctx context.Context, g *graph.Graph, kind cache.Kind, csm *bitset.Set, st *QueryStats, maxPar int) (*bitset.Set, error) {
	count := csm.Count()
	st.SubIsoTests = count
	st.TestsSaved = st.CandidatesBefore - count
	verified := bitset.New(st.CandidatesBefore)
	if count == 0 {
		return verified, nil
	}
	compile := func() *subiso.Matcher {
		if p := r.plan; p != nil {
			// The plan already compiled the matcher for the chosen
			// algorithm and direction (and caches it across isomorphic
			// repeats). Sequential use and Fork() are both fine: the
			// runtime is single-threaded per query.
			return p.verify
		}
		if kind == cache.KindSub {
			// "which graphs contain g": g is the pattern, candidates the targets.
			return subiso.CompileSub(g, r.algo)
		}
		// "which graphs are contained in g": g is the target, candidates
		// the patterns.
		return subiso.CompileSuper(g, r.algo)
	}
	done := ctx.Done()
	workers := r.verifyPar
	if maxPar > 0 && workers > maxPar {
		workers = maxPar
	}
	if most := (count + minVerifyChunk - 1) / minVerifyChunk; workers > most {
		workers = most
	}
	vt0 := time.Now()
	if workers <= 1 {
		// Sequential: iterate the bitset directly — no materialized id
		// slice, keeping the verify path allocation-lean.
		m := compile()
		cancelled := false
		n := 0
		csm.ForEach(func(id int) bool {
			if n++; n%cancelCheckInterval == 0 {
				select {
				case <-done:
					cancelled = true
					return false
				default:
				}
			}
			if m.Contains(r.ds.Graph(id)) {
				verified.Set(id)
			}
			return true
		})
		st.VerifyTime = time.Since(vt0)
		st.VerifyCPUTime = st.VerifyTime
		st.VerifyWorkers = 1
		if cancelled {
			return nil, &CancelError{Stage: "verify", Err: ctx.Err()}
		}
		return verified, nil
	}
	ids := csm.Indices()
	base := compile()
	parts := make([]*bitset.Set, workers)
	busy := make([]time.Duration, workers)
	cancelled := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(ids)/workers, (w+1)*len(ids)/workers
		wg.Add(1)
		go func(w int, chunk []int) {
			defer wg.Done()
			t0 := time.Now()
			m := base.Fork()
			out := bitset.New(st.CandidatesBefore)
			for i, id := range chunk {
				if i%cancelCheckInterval == cancelCheckInterval-1 {
					select {
					case <-done:
						cancelled[w] = true
						busy[w] = time.Since(t0)
						return
					default:
					}
				}
				if m.Contains(r.ds.Graph(id)) {
					out.Set(id)
				}
			}
			parts[w] = out
			busy[w] = time.Since(t0)
		}(w, ids[lo:hi])
	}
	wg.Wait()
	// Book every worker's busy time before deciding the outcome: a
	// cancelled worker still burned CPU up to its checkpoint, and
	// verify_cpu_sec must account for all of it — under deadline
	// pressure (exactly when operators read this gauge) returning at
	// the first cancelled worker would silently drop the busy time of
	// every worker after it.
	anyCancelled := false
	for w := 0; w < workers; w++ {
		st.VerifyCPUTime += busy[w]
		anyCancelled = anyCancelled || cancelled[w]
	}
	st.VerifyTime = time.Since(vt0)
	st.VerifyWorkers = workers
	if anyCancelled {
		return nil, &CancelError{Stage: "verify", Err: ctx.Err()}
	}
	for w := 0; w < workers; w++ {
		verified.Or(parts[w])
	}
	return verified, nil
}

// streamVerify is the streaming counterpart of verify plus formula (3):
// it walks the union of the sure positives (formula (1)) and the pruned
// candidate set in ascending id order, emitting each answer the moment
// it is known — sure positives without a test, candidates right after
// their Method M test — and stops once opt.Limit answers are out or an
// OnAnswer callback returns false. Ids are visited in ascending order,
// so an early-stopped answer is exactly the smallest |answer| ids of the
// full answer set. Streaming is sequential by construction (answers must
// come out in order), so it ignores the worker pool.
func (r *Runtime) streamVerify(ctx context.Context, g *graph.Graph, kind cache.Kind, sure, csm *bitset.Set, st *QueryStats, opt QueryOptions) (*bitset.Set, error) {
	st.TestsSaved = st.CandidatesBefore - csm.Count()
	union := csm.Clone()
	if sure != nil {
		union.Or(sure) // disjoint: the pruner removed sure ids from csm
	}
	var m *subiso.Matcher
	if p := r.plan; p != nil {
		m = p.verify
	} else if kind == cache.KindSub {
		m = subiso.CompileSub(g, r.algo)
	} else {
		m = subiso.CompileSuper(g, r.algo)
	}
	out := bitset.New(st.CandidatesBefore)
	done := ctx.Done()
	vt0 := time.Now()
	tests, emitted := 0, 0
	stopped, cancelled := false, false
	union.ForEach(func(id int) bool {
		if sure == nil || !sure.Get(id) {
			if tests++; tests%cancelCheckInterval == 0 {
				select {
				case <-done:
					cancelled = true
					return false
				default:
				}
			}
			if !m.Contains(r.ds.Graph(id)) {
				return true
			}
		}
		out.Set(id)
		emitted++
		if opt.OnAnswer != nil && !opt.OnAnswer(id) {
			stopped = true
			return false
		}
		if opt.Limit > 0 && emitted >= opt.Limit {
			stopped = true
			return false
		}
		return true
	})
	// SubIsoTests counts tests actually executed: a streaming query may
	// stop before exhausting the candidate set, so the exact identity
	// CandidatesBefore = SubIsoTests + TestsSaved of the full
	// verification path does not hold for truncated queries.
	st.SubIsoTests = tests
	st.VerifyTime = time.Since(vt0)
	st.VerifyCPUTime = st.VerifyTime
	st.VerifyWorkers = 1
	if cancelled {
		return nil, &CancelError{Stage: "verify", Err: ctx.Err()}
	}
	if stopped {
		// Conservative: stopping at the very last candidate could still
		// have produced the complete answer, but proving that would mean
		// testing the remainder — exactly what streaming avoids.
		st.Truncated = true
	}
	return out, nil
}

// streamClip applies streaming semantics to an answer already known in
// full (the §6.3 isomorphic-hit shortcut): emit ascending, honoring
// OnAnswer and Limit. Truncated is set only when ids were actually
// withheld, so a limit landing exactly on the final answer stays
// complete — and therefore cache-refresh eligible.
func streamClip(ans *bitset.Set, opt QueryOptions, st *QueryStats) *bitset.Set {
	total := ans.Count()
	out := bitset.New(st.CandidatesBefore)
	emitted := 0
	ans.ForEach(func(id int) bool {
		out.Set(id)
		emitted++
		if opt.OnAnswer != nil && !opt.OnAnswer(id) {
			return false
		}
		if opt.Limit > 0 && emitted >= opt.Limit {
			return false
		}
		return true
	})
	if emitted < total {
		st.Truncated = true
	}
	return out
}

// finish feeds the executed query back to the Cache Manager (overhead),
// closes the books on st, and folds it into the runtime metrics.
//
// Admission control dedupes against isomorphic entries: if the query is
// isomorphic to a cached one, that entry's answer snapshot and validity
// indicator are refreshed in place (it now reflects the just-executed,
// fully valid fact) instead of admitting a duplicate — duplicates would
// crowd the fixed-capacity cache without adding pruning power.
// A bypassed query (admit == false) skips the Cache Manager entirely:
// its answer was computed without consulting cache state, so neither
// refreshing an entry nor admitting a new one would be justified by a
// classification that never ran. A truncated streaming answer is
// likewise never admitted or refreshed: it may be a proper prefix of the
// true answer set, and the cache must only ever hold exact facts.
func (r *Runtime) finish(g *graph.Graph, kind cache.Kind, answer, live *bitset.Set, iso *cache.Entry, direct, restrict []*cache.Entry, admit bool, traceID uint64, start time.Time, st *QueryStats) (*Result, error) {
	if admit && r.cache != nil && !st.Truncated {
		at0 := time.Now()
		if iso != nil {
			// Through the cache so the invalidation index follows the
			// rewritten Answer/Valid bitsets.
			r.cache.RefreshEntry(iso, answer, live)
		} else {
			costEst := r.avgTestCost.Mean()
			if st.SubIsoTests > 0 {
				// CPU time, not wall: the per-test cost estimate must not
				// shrink just because verification ran on more workers.
				costEst = st.VerifyCPUTime.Seconds() / float64(st.SubIsoTests)
			}
			if costEst <= 0 {
				costEst = 1e-6 // neutral placeholder before first measurement
			}
			e := cache.NewEntry(g, kind, answer, live, r.cache.AppliedSeq(), costEst)
			// Hand the hit classification over for the query index's
			// relation graph: which cached queries contain g, and which
			// g contains. For a subgraph query those are the direct and
			// restrict hits respectively; for a supergraph query the
			// roles are inverted. Non-nil empty slices mean "known, no
			// hits" — only a nil marks relations unknown.
			containing, contained := direct, restrict
			if kind == cache.KindSuper {
				containing, contained = restrict, direct
			}
			if containing == nil {
				containing = []*cache.Entry{}
			}
			if contained == nil {
				contained = []*cache.Entry{}
			}
			r.cache.AddWithRelations(e, containing, contained)
		}
		st.Overhead += time.Since(at0)
	}
	st.QueryTime = time.Since(start) - st.Overhead
	r.m.fold(st)
	r.hists.observe(st, traceID)
	return &Result{Answer: answer, Stats: *st}, nil
}

// syncCache reconciles the cache with the dataset log: EVI purges, CON
// analyzes the log suffix (Algorithm 1) and refreshes validity indicators
// (Algorithm 2). The time spent is the ConsistencyTime share of Overhead.
func (r *Runtime) syncCache(st *QueryStats) {
	if r.cache == nil {
		return
	}
	t0 := time.Now()
	defer func() {
		d := time.Since(t0)
		st.ConsistencyTime = d
		st.Overhead += d
	}()
	recs := r.ds.RecordsSince(r.cache.AppliedSeq())
	if len(recs) == 0 {
		return
	}
	seq := recs[len(recs)-1].Seq
	if r.cache.Model() == cache.ModelEVI {
		r.cache.Purge()
		r.cache.SetAppliedSeq(seq)
		return
	}
	ctrs := dataset.Analyze(recs)
	r.cache.Validate(ctrs, seq)
	r.cache.NoteValidation()
}

// Sync reconciles the cache with the dataset log outside the query path —
// an EVI purge or a CON validation sweep, exactly as syncCache would run
// it before the next query. Serving front-ends use it as the
// update-application hook: calling Sync right after applying a dataset
// operation moves the consistency work off the query's critical path (the
// next query finds an already reconciled cache and spends ~zero
// ConsistencyTime). It returns the time spent; the time is not folded
// into the runtime metrics since no query triggered it. Like every
// Runtime method, Sync must be externally serialized.
func (r *Runtime) Sync() time.Duration {
	var st QueryStats
	r.syncCache(&st)
	return st.ConsistencyTime
}

// CacheStats snapshots the cache state and lifetime counters (the zero
// Stats when caching is disabled).
func (r *Runtime) CacheStats() cache.Stats {
	if r.cache == nil {
		return cache.Stats{}
	}
	return r.cache.Stats()
}

// findHits runs the GC+sub and GC+super processors: it discovers the
// same-kind cached entries related to g and classifies each as a direct
// hit (its valid positives transfer to g) or a restrict hit (it bounds
// g's possible answers), using the fingerprint prefilter before the
// decisive query-to-query sub-iso test.
//
// For a subgraph query, direct hits are cached queries *containing* g
// (g ⊆ g′ ⇒ g′'s positives are g's positives) and restrict hits are
// cached queries *contained in* g (g″ ⊆ g ⇒ g cannot match where g″
// validly failed). For a supergraph query the roles are exactly inverted,
// as §6's "supergraph queries follow the exact inverse logic".
//
// Discovery is index-backed when the cache maintains a query index
// (the default): the index hands over the two candidate sets — entries
// whose fingerprints could subsume g and entries g could subsume — and
// only those are examined, making hit discovery sub-linear in the cache
// size. With the index disabled, findHits falls back to the linear scan
// over every entry; the scan is retained as the differential-test
// reference and the two paths are pinned to classify identically.
func (r *Runtime) findHits(g *graph.Graph, kind cache.Kind, st *QueryStats) (direct, restrict []*cache.Entry, iso *cache.Entry) {
	if r.cache.QueryIndexEnabled() {
		return r.findHitsIndexed(g, kind, st)
	}
	return r.findHitsScan(g, kind, st)
}

// hitClassifier applies the per-entry hit classification shared by the
// indexed and linear discovery paths. mayContain/mayBeContained are
// sound prefilter verdicts: false means the corresponding fingerprint
// subsumption is guaranteed to fail, so the check is skipped entirely.
type hitClassifier struct {
	kind cache.Kind
	qf   *feature.Fingerprint
	// g is compiled once in each direction: the same query is tested
	// against every candidate, so the compiled scratch amortizes over
	// the whole pass exactly as in the verification loop.
	gAsPattern *subiso.Matcher // g ⊆ cached query?
	gAsTarget  *subiso.Matcher // cached query ⊆ g?
	// memo, when a compiled plan carries one, caches query-to-query
	// containment verdicts keyed by the cached query's graph pointer.
	// Sound forever: graphs are immutable, and whether one contains
	// another is a dataset-independent fact, so an isomorphic repeat
	// replays hit classification with zero query-to-query tests.
	memo map[*graph.Graph]uint8
	st   *QueryStats

	direct, restrict []*cache.Entry
	iso              *cache.Entry
}

// memo bits: the *Known bit marks a computed verdict, the *True bit its
// value. "contain" is g ⊆ e.Query (fingerprint prefilter included),
// "contained" is e.Query ⊆ g.
const (
	memoContainKnown uint8 = 1 << iota
	memoContainTrue
	memoContainedKnown
	memoContainedTrue
)

func (r *Runtime) newHitClassifier(g *graph.Graph, kind cache.Kind, st *QueryStats) *hitClassifier {
	h := &hitClassifier{kind: kind, st: st}
	if p := r.plan; p != nil {
		h.qf = p.qf
		h.gAsPattern = p.gAsPattern
		h.gAsTarget = p.gAsTarget
		h.memo = p.ensureMemo()
		return h
	}
	h.qf = feature.Of(g)
	h.gAsPattern = subiso.CompileSub(g, r.hitAlgo)
	h.gAsTarget = subiso.CompileSuper(g, r.hitAlgo)
	return h
}

func (h *hitClassifier) visit(e *cache.Entry, mayContain, mayBeContained bool) {
	// Fingerprint prefilters in both directions, then the decisive
	// query-to-query tests. An isomorphic entry is *both* a containing
	// and a contained hit (and the second test is skipped: same size
	// plus one-directional containment forces isomorphism). When the
	// plan memo already knows a verdict the test is skipped; a computed
	// verdict is stored for the next repeat. A false prefilter verdict
	// means the relation is guaranteed absent, so nothing needs to be
	// computed or memoized on that side.
	var bits uint8
	if h.memo != nil {
		bits = h.memo[e.Query]
	}
	isContaining := false
	if mayContain {
		if bits&memoContainKnown != 0 {
			isContaining = bits&memoContainTrue != 0
		} else {
			isContaining = h.qf.SubsumedBy(e.Fp) && h.gAsPattern.Contains(e.Query)
			bits |= memoContainKnown
			if isContaining {
				bits |= memoContainTrue
			}
		}
	}
	isContained := false
	if mayBeContained {
		if bits&memoContainedKnown != 0 {
			isContained = bits&memoContainedTrue != 0
		} else {
			isContained = e.Fp.SubsumedBy(h.qf) &&
				((isContaining && e.Fp.SameSize(h.qf)) || h.gAsTarget.Contains(e.Query))
			bits |= memoContainedKnown
			if isContained {
				bits |= memoContainedTrue
			}
		}
	}
	if h.memo != nil {
		h.memo[e.Query] = bits
	}
	h.record(e, isContaining, isContained)
}

// isoProbe reports whether e.Query is isomorphic to g: exact feature
// match plus one-directional containment. The containment verdict is
// read from (and recorded into) the plan memo when one is attached.
func (h *hitClassifier) isoProbe(e *cache.Entry) bool {
	if !h.qf.SubsumedBy(e.Fp) || !e.Fp.SubsumedBy(h.qf) {
		return false
	}
	if h.memo != nil {
		if bits := h.memo[e.Query]; bits&memoContainKnown != 0 {
			return bits&memoContainTrue != 0
		}
	}
	v := h.gAsPattern.Contains(e.Query)
	if h.memo != nil {
		bits := h.memo[e.Query] | memoContainKnown
		if v {
			bits |= memoContainTrue
		}
		h.memo[e.Query] = bits
	}
	return v
}

// record books one classified entry; the relation fast path calls it
// directly with memoized verdicts, skipping the tests in visit.
func (h *hitClassifier) record(e *cache.Entry, isContaining, isContained bool) {
	if isContaining && isContained {
		h.st.IsoHits++
		if h.iso == nil {
			h.iso = e
		}
	}
	if isContaining {
		h.st.ContainingHits++
		if h.kind == cache.KindSub {
			h.direct = append(h.direct, e)
		} else {
			h.restrict = append(h.restrict, e)
		}
	}
	if isContained {
		h.st.ContainedHits++
		if h.kind == cache.KindSub {
			h.restrict = append(h.restrict, e)
		} else {
			h.direct = append(h.direct, e)
		}
	}
}

// findHitsScan is the linear-scan reference: every window and cache
// entry is visited, every same-kind one examined.
func (r *Runtime) findHitsScan(g *graph.Graph, kind cache.Kind, st *QueryStats) (direct, restrict []*cache.Entry, iso *cache.Entry) {
	h := r.newHitClassifier(g, kind, st)
	st.HitScanned = r.cache.Size() + r.cache.WindowLen()
	r.cache.ForEach(func(e *cache.Entry) bool {
		if e.Kind != kind {
			return true
		}
		st.HitCandidates++
		h.visit(e, true, true)
		return true
	})
	return h.direct, h.restrict, h.iso
}

// findHitsIndexed asks the cache's query index for the candidate
// entries and examines only those, in the same order the scan would
// have reached them — classification, credit order and iso selection
// are bit-identical to findHitsScan by construction (the differential
// property test pins this).
//
// Repeated queries take a second shortcut: the index's isomorphism
// probe narrows the cache to entries whose features exactly match g's;
// if one proves isomorphic, its memoized relation sets — recorded at
// admission, when the query behind it was classified against every
// entry — replay the full hit classification with zero query-to-query
// sub-iso tests. Under the Zipf workloads of the paper most queries are
// repeats, so most hit discovery collapses to this path.
func (r *Runtime) findHitsIndexed(g *graph.Graph, kind cache.Kind, st *QueryStats) (direct, restrict []*cache.Entry, iso *cache.Entry) {
	h := r.newHitClassifier(g, kind, st)
	st.HitScanned = r.cache.Size() + r.cache.WindowLen()
	probed := 0
	var isoBase *cache.Entry
	r.cache.ForEachIsoCandidate(kind, g, func(e *cache.Entry) bool {
		probed++
		if h.isoProbe(e) {
			isoBase = e
			return false
		}
		return true
	})
	if isoBase != nil {
		if n, ok := r.cache.ForEachRelated(isoBase, func(e *cache.Entry, contains, containedIn bool) bool {
			h.record(e, contains, containedIn)
			return true
		}); ok {
			// isoBase was examined by the probe and revisited by
			// ForEachRelated; count it once.
			st.HitCandidates = probed + n - 1
			return h.direct, h.restrict, h.iso
		}
	}
	// The probe's candidates are a subset of the classification
	// candidates (exact-feature equality is stricter than could-contain),
	// so counting only the latter keeps HitCandidates a distinct-entry
	// count on this path.
	st.HitCandidates = r.cache.ForEachHitCandidate(kind, g,
		func(e *cache.Entry, mayContain, mayBeContained bool) bool {
			h.visit(e, mayContain, mayBeContained)
			return true
		})
	return h.direct, h.restrict, h.iso
}

// ForEachCacheEntry exposes a read-only view of the cache contents
// (window first, then admitted entries) for inspection tooling: the
// public facade's CacheEntries and the consistency example use it to
// show CGvalid evolving, mirroring the paper's Figure 2.
func (r *Runtime) ForEachCacheEntry(fn func(query, kind string, answer, valid []int, sparedTests float64)) {
	if r.cache == nil {
		return
	}
	r.cache.ForEach(func(e *cache.Entry) bool {
		fn(e.Query.Name(), e.Kind.String(), e.Answer.Indices(), e.Valid.Indices(), e.R)
		return true
	})
}

// String describes the runtime configuration.
func (r *Runtime) String() string {
	mode := "no-cache"
	if r.cache != nil {
		mode = fmt.Sprintf("%s/%s cap=%d win=%d",
			r.cache.Model(), r.cache.Config().Policy, r.cache.Config().Capacity, r.cache.Config().WindowSize)
	}
	return fmt.Sprintf("Runtime(M=%s %s)", r.algo.Name(), mode)
}
