package core

import (
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/graph"
)

// fuzzPlanGraph decodes arbitrary bytes into a small labelled graph:
// byte 0 picks the vertex count, the next n bytes pick labels, and the
// remaining byte pairs propose edges (self loops and duplicates are
// skipped so Build always succeeds).
func fuzzPlanGraph(data []byte) *graph.Graph {
	if len(data) == 0 {
		return graph.NewBuilder().MustBuild()
	}
	n := int(data[0])%8 + 1
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		lbl := graph.Label(0)
		if 1+i < len(data) {
			lbl = graph.Label(data[1+i] % 6)
		}
		b.AddVertex(lbl)
	}
	seen := map[[2]int]bool{}
	for i := 1 + n; i+1 < len(data); i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u > v {
			u, v = v, u
		}
		if u == v || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// FuzzPlanKey pins the canonical plan-cache key's contract on arbitrary
// graphs: deterministic; equal on structurally equal graphs (the set a
// cached plan may serve); separated by query kind; and discriminating
// under the cheap structural edits a digest must not blur (a relabelled
// vertex, an extra vertex, an extra edge). graphsEqual — the arbitration
// that makes a key hit safe — is fuzzed alongside: it must agree with
// itself under argument order and accept exactly clones here.
func FuzzPlanKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 3, 0, 1, 1, 2, 0, 2})
	f.Add([]byte{6, 0, 0, 0, 0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0})
	f.Add([]byte{1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzPlanGraph(data)
		key := planKey(g, cache.KindSub)
		if again := planKey(g, cache.KindSub); again != key {
			t.Fatalf("non-deterministic key: %d vs %d", key, again)
		}
		c := g.Clone()
		if !graphsEqual(g, c) || !graphsEqual(c, g) {
			t.Fatal("graphsEqual rejects a clone")
		}
		if ck := planKey(c, cache.KindSub); ck != key {
			t.Fatalf("clone key %d != %d", ck, key)
		}
		if sk := planKey(g, cache.KindSuper); sk == key {
			t.Fatalf("sub and super share key %d", key)
		}
		if g.NumVertices() == 0 {
			return
		}
		// Relabel vertex 0: no longer equal, and the key must notice —
		// a blurred digest would hand the relabelled query a plan whose
		// matchers test the wrong labels (caught by graphsEqual, but at
		// the cost of evicting the resident plan every repeat).
		relabelled := relabelVertex0(g)
		if graphsEqual(g, relabelled) {
			t.Fatal("relabelled graph compares equal")
		}
		if rk := planKey(relabelled, cache.KindSub); rk == key {
			t.Fatalf("relabelled graph shares key %d", key)
		}
		// One extra isolated vertex: structurally distinct, distinct key.
		grown := buildCopy(g, true)
		if graphsEqual(g, grown) {
			t.Fatal("grown graph compares equal")
		}
		if gk := planKey(grown, cache.KindSub); gk == key {
			t.Fatalf("grown graph shares key %d", key)
		}
	})
}

// buildCopy rebuilds g vertex-for-vertex, optionally appending one extra
// isolated vertex.
func buildCopy(g *graph.Graph, extraVertex bool) *graph.Graph {
	b := graph.NewBuilder()
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(g.Label(v))
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				b.AddEdge(v, int(w))
			}
		}
	}
	if extraVertex {
		b.AddVertex(graph.Label(7))
	}
	return b.MustBuild()
}

// relabelVertex0 rebuilds g with vertex 0's label bumped, so the copy is
// structurally distinct from g in exactly one vertex label.
func relabelVertex0(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder()
	for v := 0; v < g.NumVertices(); v++ {
		l := g.Label(v)
		if v == 0 {
			l++
		}
		b.AddVertex(l)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				b.AddEdge(v, int(w))
			}
		}
	}
	return b.MustBuild()
}
