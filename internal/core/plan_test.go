package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/testutil"
)

// TestAvgTestCostGating pins the cost-estimator sampling gate: bypassed
// queries and tiny candidate sets must not feed avgTestCost. Pre-fix,
// every query with at least one test polluted the estimator — a bypassed
// query runs outside the cache books, and a 3-test query's per-test
// "cost" is mostly matcher compilation, so both skewed the costEst used
// by HD/PINC admission scoring and the planner's algorithm choice.
func TestAvgTestCostGating(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool := make([]*graph.Graph, 12)
	for i := range pool {
		pool[i] = testutil.RandomConnectedGraph(rng, 8+rng.Intn(8), 4, 0.15)
	}
	cfg := &cache.Config{Capacity: 30, WindowSize: 5}
	r, err := NewRuntime(dataset.New(pool), Options{Algorithm: subiso.VF2{}, Cache: cfg})
	if err != nil {
		t.Fatal(err)
	}
	q := testutil.BFSExtract(rng, pool[0], 0, 3)

	// Bypassed query over >= minCostSampleTests candidates: no sample.
	res, err := r.SubgraphQueryCtx(context.Background(), q, QueryOptions{BypassCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubIsoTests < minCostSampleTests {
		t.Fatalf("fixture too small: %d tests, want >= %d", res.Stats.SubIsoTests, minCostSampleTests)
	}
	if !res.Stats.CacheBypassed {
		t.Fatal("expected CacheBypassed")
	}
	if n := r.avgTestCost.N(); n != 0 {
		t.Fatalf("bypassed query polluted avgTestCost: N = %d, want 0", n)
	}

	// Tiny candidate set (below the sample floor): no sample either.
	rSmall, err := NewRuntime(dataset.New(pool[:4]), Options{Algorithm: subiso.VF2{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err = rSmall.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubIsoTests >= minCostSampleTests {
		t.Fatalf("fixture too large: %d tests", res.Stats.SubIsoTests)
	}
	if n := rSmall.avgTestCost.N(); n != 0 {
		t.Fatalf("tiny candidate set polluted avgTestCost: N = %d, want 0", n)
	}

	// A normal query over a big enough set is a sample.
	if _, err := r.SubgraphQuery(q); err != nil {
		t.Fatal(err)
	}
	if n := r.avgTestCost.N(); n < 1 {
		t.Fatalf("normal query not sampled: N = %d, want >= 1", n)
	}
}

// TestParallelVerifyCancelAccounting pins the cancellation accounting of
// the verification pool: a cancelled parallel verify must book every
// worker's busy time into VerifyCPUTime (not bail at the first cancelled
// worker) and report the fan-out width, so verify_cpu_sec stays honest
// exactly when operators read it — under deadline pressure.
func TestParallelVerifyCancelAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pool := make([]*graph.Graph, 256)
	for i := range pool {
		pool[i] = testutil.RandomConnectedGraph(rng, 8+rng.Intn(10), 4, 0.15)
	}
	r, err := NewRuntime(dataset.New(pool), Options{Algorithm: subiso.VF2{}, VerifyParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := testutil.BFSExtract(rng, pool[0], 0, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every worker hits its first checkpoint already cancelled

	live := r.ds.LiveSnapshot()
	csm := live.Clone()
	st := QueryStats{Kind: cache.KindSub, CandidatesBefore: csm.Count()}
	_, err = r.verify(ctx, q, cache.KindSub, csm, &st, 0)
	var ce *CancelError
	if !errors.As(err, &ce) || ce.Stage != "verify" {
		t.Fatalf("want *CancelError at stage verify, got %v", err)
	}
	if st.VerifyWorkers != 4 {
		t.Fatalf("VerifyWorkers = %d, want 4", st.VerifyWorkers)
	}
	if st.VerifyCPUTime <= 0 {
		t.Fatalf("cancelled parallel verify dropped worker busy time: VerifyCPUTime = %v", st.VerifyCPUTime)
	}
	if st.VerifyTime <= 0 {
		t.Fatalf("VerifyTime = %v, want > 0", st.VerifyTime)
	}

	// Sequential path: the busy time up to the checkpoint is booked too.
	csm2 := live.Clone()
	st2 := QueryStats{Kind: cache.KindSub, CandidatesBefore: csm2.Count()}
	_, err = r.verify(ctx, q, cache.KindSub, csm2, &st2, 1)
	if !errors.As(err, &ce) || ce.Stage != "verify" {
		t.Fatalf("want *CancelError at stage verify, got %v", err)
	}
	if st2.VerifyWorkers != 1 {
		t.Fatalf("VerifyWorkers = %d, want 1", st2.VerifyWorkers)
	}
	if st2.VerifyCPUTime <= 0 {
		t.Fatalf("cancelled sequential verify dropped busy time: VerifyCPUTime = %v", st2.VerifyCPUTime)
	}
}

// TestPlanCacheReuse exercises the compiled-plan cache's three reuse
// tiers: pointer-identical repeat, structurally equal repeat (clone), and
// the isomorphic-but-renumbered case, which must be a miss — its compiled
// matchers would test against the wrong vertex numbering — while still
// producing bit-identical answers to a planner-off runtime.
func TestPlanCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pool := make([]*graph.Graph, 40)
	for i := range pool {
		pool[i] = testutil.RandomConnectedGraph(rng, 8+rng.Intn(10), 4, 0.15)
	}
	rPlan, err := NewRuntime(dataset.New(pool), Options{Algorithm: subiso.VF2{}, EnablePlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	rBase, err := NewRuntime(dataset.New(pool), Options{Algorithm: subiso.VF2{}})
	if err != nil {
		t.Fatal(err)
	}
	check := func(q *graph.Graph, wantCached bool, what string) *Result {
		t.Helper()
		got, err := rPlan.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rBase.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Answer.Equal(want.Answer) {
			t.Fatalf("%s: planner answer %v != baseline %v", what, got.AnswerIDs(), want.AnswerIDs())
		}
		if got.Stats.PlanAlgorithm == "" {
			t.Fatalf("%s: PlanAlgorithm empty with planner on", what)
		}
		if got.Stats.PlanCached != wantCached {
			t.Fatalf("%s: PlanCached = %v, want %v", what, got.Stats.PlanCached, wantCached)
		}
		return got
	}

	q := testutil.BFSExtract(rng, pool[0], 0, 4)
	check(q, false, "first execution")
	check(q, true, "pointer repeat")
	check(q.Clone(), true, "structural clone")

	// Same canonical key, different vertex numbering: a confirmed miss.
	a := graph.Path(1, 2, 3)
	b := graph.Path(3, 2, 1)
	check(a, false, "path 1-2-3")
	check(b, false, "renumbered isomorph 3-2-1")

	if hits := rPlan.Metrics().PlanCacheHits; hits < 2 {
		t.Fatalf("PlanCacheHits = %d, want >= 2", hits)
	}

	// Plan caching disabled (negative size): planning still runs, every
	// query is a miss, answers unchanged.
	rNoCache, err := NewRuntime(dataset.New(pool), Options{Algorithm: subiso.VF2{}, EnablePlanner: true, PlanCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := rNoCache.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PlanCached {
			t.Fatal("PlanCached with plan caching disabled")
		}
		want, err := rBase.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answer.Equal(want.Answer) {
			t.Fatalf("no-plan-cache answer diverged: %v != %v", res.AnswerIDs(), want.AnswerIDs())
		}
	}
	if m := rNoCache.Metrics(); m.PlanCacheHits != 0 || m.PlanCacheMisses != 2 {
		t.Fatalf("plan-cache-off metrics = %d hits / %d misses, want 0/2", m.PlanCacheHits, m.PlanCacheMisses)
	}
}

// TestStreamingVerify pins the streaming contract: with Limit k the
// answer is exactly the k smallest ids of the full answer set, OnAnswer
// sees ids ascending, a full stream is bit-identical to the exact path,
// and a truncated answer is never admitted to the cache.
func TestStreamingVerify(t *testing.T) {
	// Even ids contain the query path, odd ids do not: the full answer is
	// the 15 even ids, interleaved with non-answers so streaming has to
	// skip candidates between emissions.
	var pool []*graph.Graph
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			pool = append(pool, graph.Path(1, 2, 3))
		} else {
			pool = append(pool, graph.Path(4, 5, 6))
		}
	}
	q := graph.Path(1, 2)
	ctx := context.Background()

	r, err := NewRuntime(dataset.New(pool), Options{Algorithm: subiso.VF2{}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	fullIDs := full.AnswerIDs()
	if len(fullIDs) != 15 {
		t.Fatalf("fixture: full answer has %d ids, want 15", len(fullIDs))
	}

	// Limit below the answer size: exact prefix, truncated.
	res, err := r.SubgraphQueryCtx(ctx, q, QueryOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AnswerIDs(); len(got) != 5 {
		t.Fatalf("Limit=5 returned %d ids", len(got))
	} else {
		for i, id := range got {
			if id != fullIDs[i] {
				t.Fatalf("Limit=5 ids %v are not the smallest-5 prefix of %v", got, fullIDs[:5])
			}
		}
	}
	if !res.Stats.Truncated {
		t.Fatal("Limit=5 over 15 answers: Truncated not set")
	}

	// Limit above the answer size: complete and not truncated.
	res, err = r.SubgraphQueryCtx(ctx, q, QueryOptions{Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(full.Answer) || res.Stats.Truncated {
		t.Fatalf("Limit=100: answer %v truncated=%v, want full answer untruncated",
			res.AnswerIDs(), res.Stats.Truncated)
	}

	// OnAnswer full stream: ids arrive ascending and the final answer is
	// bit-identical to the exact path.
	var seen []int
	res, err = r.SubgraphQueryCtx(ctx, q, QueryOptions{OnAnswer: func(id int) bool {
		seen = append(seen, id)
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(full.Answer) || res.Stats.Truncated {
		t.Fatal("full OnAnswer stream diverged from the exact answer")
	}
	if len(seen) != len(fullIDs) {
		t.Fatalf("OnAnswer saw %d ids, want %d", len(seen), len(fullIDs))
	}
	for i, id := range seen {
		if id != fullIDs[i] {
			t.Fatalf("OnAnswer order %v != ascending %v", seen, fullIDs)
		}
	}

	// OnAnswer early stop: truncated after exactly 3 emissions.
	seen = seen[:0]
	res, err = r.SubgraphQueryCtx(ctx, q, QueryOptions{OnAnswer: func(id int) bool {
		seen = append(seen, id)
		return len(seen) < 3
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || !res.Stats.Truncated {
		t.Fatalf("early stop: saw %d ids, truncated=%v", len(seen), res.Stats.Truncated)
	}

	// Cache interaction: a truncated answer must never be admitted; the
	// following exact query is, and an iso-hit repeat streams through the
	// §6.3 shortcut.
	rc, err := NewRuntime(dataset.New(pool), Options{
		Algorithm: subiso.VF2{},
		Cache:     &cache.Config{Capacity: 30, WindowSize: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.SubgraphQueryCtx(ctx, q, QueryOptions{Limit: 5}); err != nil {
		t.Fatal(err)
	}
	if n := rc.cache.Size() + rc.cache.WindowLen(); n != 0 {
		t.Fatalf("truncated answer admitted: %d cache/window entries", n)
	}
	if _, err := rc.SubgraphQuery(q); err != nil {
		t.Fatal(err)
	}
	if n := rc.cache.Size() + rc.cache.WindowLen(); n == 0 {
		t.Fatal("exact query not admitted")
	}
	res, err = rc.SubgraphQueryCtx(ctx, q.Clone(), QueryOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ExactHit {
		t.Fatal("iso repeat with Limit did not take the exact-hit shortcut")
	}
	if got := res.AnswerIDs(); len(got) != 3 || got[0] != fullIDs[0] || got[2] != fullIDs[2] {
		t.Fatalf("iso-hit Limit=3 ids = %v, want %v", got, fullIDs[:3])
	}
	if !res.Stats.Truncated {
		t.Fatal("iso-hit clipped answer: Truncated not set")
	}
}

// TestPlannerStreamingEquivalence cross-checks the planner and streaming
// paths against the default pipeline on a randomized workload: same
// answers, in every combination, with the dataset evolving between
// queries.
func TestPlannerStreamingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pool := make([]*graph.Graph, 80)
	for i := range pool {
		pool[i] = testutil.RandomConnectedGraph(rng, 6+rng.Intn(16), 4, 0.12)
	}
	cfg := func() *cache.Config { return &cache.Config{Capacity: 30, WindowSize: 5} }
	newRT := func(o Options) *Runtime {
		t.Helper()
		r, err := NewRuntime(dataset.New(pool), o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := newRT(Options{Algorithm: subiso.VF2{}, Cache: cfg()})
	plan := newRT(Options{Algorithm: subiso.VF2{}, Cache: cfg(), EnablePlanner: true})
	ctx := context.Background()
	var issued []*graph.Graph
	for step := 0; step < 60; step++ {
		var q *graph.Graph
		if len(issued) > 0 && rng.Float64() < 0.4 {
			// Repeat an earlier query as a fresh clone — the Zipf-repeat
			// shape the plan cache exists for.
			q = issued[rng.Intn(len(issued))].Clone()
		} else {
			src := pool[rng.Intn(len(pool))]
			q = testutil.BFSExtract(rng, src, rng.Intn(src.NumVertices()), 2+rng.Intn(6))
		}
		issued = append(issued, q)
		kind := cache.KindSub
		if step%3 == 0 {
			kind = cache.KindSuper
		}
		run := func(r *Runtime, opt QueryOptions) *Result {
			t.Helper()
			var res *Result
			var err error
			if kind == cache.KindSub {
				res, err = r.SubgraphQueryCtx(ctx, q, opt)
			} else {
				res, err = r.SupergraphQueryCtx(ctx, q, opt)
			}
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		want := run(base, QueryOptions{})
		if got := run(plan, QueryOptions{}); !got.Answer.Equal(want.Answer) {
			t.Fatalf("step %d: planner answer %v != baseline %v", step, got.AnswerIDs(), want.AnswerIDs())
		}
		// Streaming with a generous limit must reproduce the full answer
		// on a *fresh* runtime (streaming against warm runtimes is pinned
		// by the oracle; here the point is the stream/exact equivalence).
		if step%10 == 0 {
			fresh := newRT(Options{Algorithm: subiso.VF2{}, EnablePlanner: true})
			if got := run(fresh, QueryOptions{Limit: len(pool) + 1}); !got.Answer.Equal(want.Answer) {
				t.Fatalf("step %d: streamed answer %v != baseline %v", step, got.AnswerIDs(), want.AnswerIDs())
			}
		}
	}
	if plan.Metrics().PlanCacheHits == 0 {
		t.Fatal("randomized repeat workload produced zero plan-cache hits")
	}
}
