package core

import (
	"gcplus/internal/cache"
	"gcplus/internal/feature"
	"gcplus/internal/ftv"
	"gcplus/internal/graph"
	"gcplus/internal/stats"
	"gcplus/internal/subiso"
)

// DefaultPlanCacheSize is the compiled-plan cache capacity used when
// Options.EnablePlanner is set and Options.PlanCacheSize is zero. Plans
// are small (a few compiled matchers plus a verdict memo), so the
// default comfortably covers the repeat sets of the paper's Zipf
// workloads.
const DefaultPlanCacheSize = 256

// minCostSampleTests is the fewest Method M tests a query must execute
// before its per-test cost is admitted as an estimator sample: below
// this, fixed per-query overhead (matcher compile, pool fan-out)
// dominates the measurement and would skew both the HD/PINC admission
// costEst and the planner's algorithm choice.
const minCostSampleTests = 8

// minPlanSamples is how many cost samples every candidate algorithm
// must accumulate (per query kind) before the planner trusts the means:
// until then it round-robins the least-sampled algorithm to explore.
const minPlanSamples = 3

// seqVerifyCost is the estimated fixed cost (seconds) of fanning the
// verification pool out and joining it. When the measured per-test cost
// says the whole candidate set verifies in less than this, the planner
// forces sequential verification — parallelism would only add latency.
const seqVerifyCost = 200e-6

// maxPlanMemo bounds a plan's containment-verdict memo; on overflow the
// memo is reset wholesale (verdicts are recomputable facts, never
// required for correctness).
const maxPlanMemo = 2048

// planner chooses a per-query execution plan from measured per-kind,
// per-algorithm cost moments, and caches compiled plans so isomorphic
// repeats skip compilation and planning entirely. It is owned by a
// Runtime and shares its single-threaded discipline.
type planner struct {
	hitAlgo subiso.Algorithm
	// algos are the candidate Method M algorithms, the configured one
	// first (so the planner degenerates to the configured behavior until
	// cost samples justify a switch). All candidates are exact, which is
	// why algorithm choice can never change an answer.
	algos []subiso.Algorithm
	// cost holds per-test CPU-seconds moments indexed [kindIdx][algoIdx].
	cost [2][]stats.Running

	// cacheCap bounds byKey; 0 disables plan caching (the planner still
	// chooses algorithms and parallelism, recompiling per query).
	cacheCap int
	// byKey caches plans under the canonical plan key; order is its
	// FIFO eviction queue (plan compilation is cheap enough that smarter
	// eviction buys nothing measurable).
	byKey map[uint64]*queryPlan
	order []uint64
	// ptr short-circuits the canonical-key computation for repeated
	// query *pointers*, per kind (the same graph value may be issued as
	// both a sub- and a supergraph query). Graphs are immutable once
	// published, so pointer identity is a sound memo key; the map is
	// reset wholesale when it outgrows the plan cache.
	ptr [2]map[*graph.Graph]*queryPlan
}

// queryPlan is one compiled plan: everything per-query compilation used
// to produce, reusable across isomorphic repeats.
type queryPlan struct {
	query *graph.Graph
	kind  cache.Kind

	// Hit-discovery artifacts (always compiled with the hit algorithm).
	qf         *feature.Fingerprint
	gAsPattern *subiso.Matcher // query ⊆ cached query?
	gAsTarget  *subiso.Matcher // cached query ⊆ query?

	// verify is the Method M matcher for the chosen algorithm; algoIdx
	// indexes planner.algos and the cost moments.
	verify  *subiso.Matcher
	algoIdx int

	// memo caches query-to-query containment verdicts (see the
	// hitClassifier memo bits), keyed by cached-query graph pointer.
	memo map[*graph.Graph]uint8

	// qsigs memoizes the query's ftv path signatures at qsigsLen (the
	// cache query index's configured path length). Signatures are a pure
	// function of graph structure, so they hold for every structurally
	// equal repeat the plan serves — extracting them is the single most
	// expensive per-query step of indexed hit discovery, which a plan
	// hit thereby skips.
	qsigs    []string
	qsigsLen int
}

// sigsFor returns the query's path signatures at pathLen, extracting
// them on first use (or when the index's configured length changed).
func (pl *queryPlan) sigsFor(pathLen int) []string {
	if pathLen <= 0 {
		return nil
	}
	if pl.qsigs == nil || pl.qsigsLen != pathLen {
		pl.qsigs = ftv.PathSignatures(pl.query, pathLen)
		pl.qsigsLen = pathLen
	}
	return pl.qsigs
}

// ensureMemo returns the plan's verdict memo, allocating it lazily and
// resetting it when it outgrows maxPlanMemo.
func (pl *queryPlan) ensureMemo() map[*graph.Graph]uint8 {
	if pl.memo == nil || len(pl.memo) > maxPlanMemo {
		pl.memo = make(map[*graph.Graph]uint8, 32)
	}
	return pl.memo
}

func newPlanner(algo, hitAlgo subiso.Algorithm, cacheCap int) *planner {
	p := &planner{hitAlgo: hitAlgo, cacheCap: cacheCap}
	p.algos = append(p.algos, algo)
	for _, cand := range subiso.PlannerAlgorithms() {
		if cand.Name() != algo.Name() {
			p.algos = append(p.algos, cand)
		}
	}
	for k := range p.cost {
		p.cost[k] = make([]stats.Running, len(p.algos))
	}
	if cacheCap > 0 {
		p.byKey = make(map[uint64]*queryPlan, cacheCap)
		p.ptr[0] = make(map[*graph.Graph]*queryPlan)
		p.ptr[1] = make(map[*graph.Graph]*queryPlan)
	}
	return p
}

func kindIdx(k cache.Kind) int {
	if k == cache.KindSub {
		return 0
	}
	return 1
}

// planFor returns the plan for (g, kind), reusing a cached one when the
// query is a pointer-identical or structurally equal repeat. The plan
// key is a digest, not a proof, so a key hit is confirmed structurally;
// a colliding non-equal graph is treated as a miss and replaces the
// slot (its artifacts would test against the wrong vertex numbering).
func (p *planner) planFor(g *graph.Graph, kind cache.Kind, st *QueryStats) *queryPlan {
	if p.cacheCap <= 0 {
		return p.compile(g, kind)
	}
	ki := kindIdx(kind)
	if pl, ok := p.ptr[ki][g]; ok {
		st.PlanCached = true
		p.retune(pl)
		return pl
	}
	key := planKey(g, kind)
	if pl, ok := p.byKey[key]; ok && graphsEqual(pl.query, g) {
		st.PlanCached = true
		p.memoizePtr(ki, g, pl)
		p.retune(pl)
		return pl
	}
	pl := p.compile(g, kind)
	p.store(key, pl)
	p.memoizePtr(ki, g, pl)
	return pl
}

func (p *planner) compile(g *graph.Graph, kind cache.Kind) *queryPlan {
	idx := p.chooseAlgo(kindIdx(kind))
	return &queryPlan{
		query:      g,
		kind:       kind,
		qf:         feature.Of(g),
		gAsPattern: subiso.CompileSub(g, p.hitAlgo),
		gAsTarget:  subiso.CompileSuper(g, p.hitAlgo),
		verify:     compileVerify(g, kind, p.algos[idx]),
		algoIdx:    idx,
	}
}

// compileVerify compiles the Method M matcher in the direction the query
// kind needs: for a subgraph query g is the pattern, for a supergraph
// query g is the target.
func compileVerify(g *graph.Graph, kind cache.Kind, algo subiso.Algorithm) *subiso.Matcher {
	if kind == cache.KindSub {
		return subiso.CompileSub(g, algo)
	}
	return subiso.CompileSuper(g, algo)
}

// chooseAlgo picks the algorithm index for one query kind: while any
// candidate is under-sampled the least-sampled one runs next
// (exploration; ties keep the earliest index, so choice is deterministic
// and zero-test workloads never flip matchers), after which the lowest
// measured mean per-test cost wins.
func (p *planner) chooseAlgo(ki int) int {
	least, leastN := 0, p.cost[ki][0].N()
	for i := 1; i < len(p.algos); i++ {
		if n := p.cost[ki][i].N(); n < leastN {
			least, leastN = i, n
		}
	}
	if leastN < minPlanSamples {
		return least
	}
	best, bestMean := 0, p.cost[ki][0].Mean()
	for i := 1; i < len(p.algos); i++ {
		if m := p.cost[ki][i].Mean(); m < bestMean {
			best, bestMean = i, m
		}
	}
	return best
}

// retune re-evaluates the algorithm choice for a cached plan: cost
// moments accumulated since it was compiled may have crowned a different
// algorithm, in which case only the verify matcher is recompiled (the
// hit-discovery artifacts and memo are algorithm-independent).
func (p *planner) retune(pl *queryPlan) {
	if idx := p.chooseAlgo(kindIdx(pl.kind)); idx != pl.algoIdx {
		pl.algoIdx = idx
		pl.verify = compileVerify(pl.query, pl.kind, p.algos[idx])
	}
}

// note records one measured per-test cost sample (already gated by the
// caller: no bypass runs, no tiny candidate sets).
func (p *planner) note(kind cache.Kind, algoIdx int, perTest float64) {
	p.cost[kindIdx(kind)][algoIdx].Add(perTest)
}

// parallelCap returns a cap on the verification worker pool for a
// candidate set of the given size: 1 (force sequential) when the
// measured per-test cost says the whole set verifies in less than the
// pool's fan-out/join overhead, 0 (no planner opinion) otherwise.
func (p *planner) parallelCap(kind cache.Kind, algoIdx, count int) int {
	rs := &p.cost[kindIdx(kind)][algoIdx]
	if rs.N() < minPlanSamples {
		return 0
	}
	if rs.Mean()*float64(count) < seqVerifyCost {
		return 1
	}
	return 0
}

// store inserts a freshly compiled plan under its canonical key,
// evicting FIFO at capacity. Replacing an existing key keeps its
// original queue position (keys appear in order at most once).
func (p *planner) store(key uint64, pl *queryPlan) {
	if _, exists := p.byKey[key]; !exists {
		for len(p.byKey) >= p.cacheCap && len(p.order) > 0 {
			delete(p.byKey, p.order[0])
			p.order = p.order[1:]
		}
		p.order = append(p.order, key)
	}
	p.byKey[key] = pl
}

// memoizePtr records the pointer → plan shortcut, resetting the map
// wholesale once it outgrows the plan cache (long-lived servers see
// unbounded distinct query pointers; the canonical-key path backstops
// any reset).
func (p *planner) memoizePtr(ki int, g *graph.Graph, pl *queryPlan) {
	if len(p.ptr[ki]) >= 4*p.cacheCap {
		p.ptr[ki] = make(map[*graph.Graph]*queryPlan, p.cacheCap)
	}
	p.ptr[ki][g] = pl
}

// planKey derives the canonical plan-cache key: an FNV-1a digest of the
// query kind and the graph's exact structure (vertex count, per-vertex
// label + sorted neighbor list, edge count). Two graphs share a key iff
// they are structurally equal under the same vertex numbering — which is
// precisely the condition for reusing compiled matchers verbatim, so the
// key targets exactly the repeats the plan cache can serve.
//
// The key is a digest, not a proof: graphsEqual arbitrates every key hit
// before a plan is reused, so an FNV collision degrades to a miss, never
// to a wrong plan. The full isomorphism-invariant ftv.CanonicalKey was
// deliberately rejected here — enumerating path signatures costs ~100µs
// per 22-vertex query (measured), which is the same order as serving the
// query, while an isomorphic-but-renumbered repeat would fail the
// graphsEqual arbitration anyway (its compiled matchers index the wrong
// vertices). The O(V+E) digest keeps the lookup three orders of
// magnitude cheaper and hits the exact same reusable set.
func planKey(g *graph.Graph, kind cache.Kind) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	if kind == cache.KindSub {
		mix(1)
	} else {
		mix(2)
	}
	mix(uint64(g.NumVertices()))
	mix(uint64(g.NumEdges()))
	for v := 0; v < g.NumVertices(); v++ {
		mix(uint64(g.Label(v)))
		for _, w := range g.Neighbors(v) {
			mix(uint64(w) + 1)
		}
		// Separator so (labels, neighbor runs) parse unambiguously: the
		// vertex boundary itself is part of the digested structure.
		mix(0)
	}
	return h
}

// graphsEqual reports structural equality under the *same* vertex
// numbering — the condition for reusing another graph's compiled
// matchers verbatim. Neighbor lists are sorted by construction, so the
// comparison is a linear scan.
func graphsEqual(a, b *graph.Graph) bool {
	if a == b {
		return true
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(v) != b.Label(v) {
			return false
		}
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}
