package core

import (
	"math/rand"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/testutil"
)

// TestEmptyShortcutSupergraph exercises the §6.3 second optimal case in
// the supergraph direction: for supergraph queries the inference runs
// through a *containing* cached query with an empty answer.
func TestEmptyShortcutSupergraph(t *testing.T) {
	// dataset graphs all have ≥ 3 vertices, so nothing fits in a
	// 2-vertex query: supergraph answers below are empty.
	ds := dataset.New([]*graph.Graph{
		graph.Path(0, 1, 0), graph.Cycle(0, 1, 0), graph.Path(1, 1, 1, 1),
	})
	r, err := NewRuntime(ds, Options{
		Algorithm: subiso.VF2{},
		Cache:     &cache.Config{Capacity: 8, WindowSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	big := graph.Path(7, 7, 7, 7) // label 7 nowhere in dataset
	res1, err := r.SupergraphQuery(big)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Answer.Any() {
		t.Fatal("expected empty supergraph answer")
	}
	// a query contained in the cached one: any G ⊆ small would also be
	// ⊆ big, whose answer is empty ⇒ certain-empty without tests.
	small := graph.Path(7, 7)
	res2, err := r.SupergraphQuery(small)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.EmptyShortcut || res2.Stats.SubIsoTests != 0 {
		t.Fatalf("supergraph empty shortcut did not fire: %+v", res2.Stats)
	}
	if res2.Answer.Any() {
		t.Fatal("shortcut answer must be empty")
	}
}

func TestForEachCacheEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, _ := newTestDataset(rng, 5)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	q := testutil.BFSExtract(rng, ds.Graph(0), 0, 3)
	q.SetName("probe")
	if _, err := r.SubgraphQuery(q); err != nil {
		t.Fatal(err)
	}
	count := 0
	r.ForEachCacheEntry(func(query, kind string, answer, valid []int, spared float64) {
		count++
		if query != "probe" || kind != "sub" {
			t.Fatalf("entry = %s/%s", query, kind)
		}
		if len(valid) != ds.LiveCount() {
			t.Fatalf("fresh entry valid on %d of %d", len(valid), ds.LiveCount())
		}
	})
	if count != 1 {
		t.Fatalf("visited %d entries", count)
	}
	// disabled cache: no entries, no panic
	bare, err := NewRuntime(ds, Options{Algorithm: subiso.VF2{}})
	if err != nil {
		t.Fatal(err)
	}
	bare.ForEachCacheEntry(func(string, string, []int, []int, float64) {
		t.Fatal("no entries expected")
	})
}

// TestIsoRefreshKeepsSingleEntry: repeated executions of the same query
// must refresh the cached entry in place rather than duplicating it.
func TestIsoRefreshKeepsSingleEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds, _ := newTestDataset(rng, 6)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	q := testutil.BFSExtract(rng, ds.Graph(1), 0, 3)
	for i := 0; i < 6; i++ {
		if _, err := r.SubgraphQuery(q.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	entries := 0
	r.ForEachCacheEntry(func(string, string, []int, []int, float64) { entries++ })
	if entries != 1 {
		t.Fatalf("cache holds %d entries for one repeated query", entries)
	}
}

// TestIsoRefreshRestoresFullValidity: after churn partially invalidates
// an entry, re-executing the same query restores full validity, so the
// next repetition is an exact hit again.
func TestIsoRefreshRestoresFullValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds, pool := newTestDataset(rng, 8)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	q := testutil.BFSExtract(rng, ds.Graph(2), 0, 3)
	if _, err := r.SubgraphQuery(q.Clone()); err != nil {
		t.Fatal(err)
	}
	testutil.RandomChange(rng, ds, pool)
	// first re-execution: possibly partial, refreshes the entry
	if _, err := r.SubgraphQuery(q.Clone()); err != nil {
		t.Fatal(err)
	}
	// second re-execution without further churn: must be an exact hit
	res, err := r.SubgraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ExactHit || res.Stats.SubIsoTests != 0 {
		t.Fatalf("refresh did not restore exactness: %+v", res.Stats)
	}
	if !res.Answer.Equal(testutil.GroundTruthSub(ds, q)) {
		t.Fatal("refreshed answer wrong")
	}
}

// TestMoleculeScaleAgreement cross-checks the three production algorithms
// on AIDS-scale graphs (too big for the brute-force oracle) — they must
// agree with each other even when we cannot afford ground truth.
func TestMoleculeScaleAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	algos := []subiso.Algorithm{subiso.VF2{}, subiso.VF2Plus{}, subiso.GraphQL{}}
	for i := 0; i < 40; i++ {
		target := testutil.RandomConnectedGraph(rng, 40+rng.Intn(40), 8, 0.03)
		var pattern *graph.Graph
		if rng.Intn(2) == 0 {
			pattern = testutil.BFSExtract(rng, target, rng.Intn(target.NumVertices()), 4+rng.Intn(16))
		} else {
			pattern = testutil.RandomConnectedGraph(rng, 4+rng.Intn(10), 8, 0.2)
		}
		want := algos[0].Contains(pattern, target)
		for _, a := range algos[1:] {
			if got := a.Contains(pattern, target); got != want {
				t.Fatalf("iter %d: %s=%v, VF2=%v", i, a.Name(), got, want)
			}
		}
	}
}

// TestLongMixedScenario runs a longer interleaving with both query kinds
// against ground truth under CON — a heavier variant of the theorem
// tests kept separate so -short can skip it.
func TestLongMixedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario")
	}
	runScenario(t, 424242, cache.ModelCON, cache.PolicyHD, 150)
	runScenario(t, 434343, cache.ModelEVI, cache.PolicyPIN, 150)
}
