package core

import (
	"math/rand"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/testutil"
)

func newTestDataset(rng *rand.Rand, n int) (*dataset.Dataset, []*graph.Graph) {
	pool := make([]*graph.Graph, n)
	for i := range pool {
		pool[i] = testutil.RandomConnectedGraph(rng, 4+rng.Intn(8), 3, 0.15)
	}
	return dataset.New(pool), pool
}

func cachedRuntime(t *testing.T, ds *dataset.Dataset, model cache.Model, policy cache.Policy) *Runtime {
	t.Helper()
	r, err := NewRuntime(ds, Options{
		Algorithm: subiso.VF2{},
		Cache: &cache.Config{
			Capacity:   8,
			WindowSize: 3,
			Model:      model,
			Policy:     policy,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRuntimeValidation(t *testing.T) {
	ds, _ := newTestDataset(rand.New(rand.NewSource(1)), 3)
	if _, err := NewRuntime(nil, Options{Algorithm: subiso.VF2{}}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewRuntime(ds, Options{}); err == nil {
		t.Error("nil algorithm accepted")
	}
	r, err := NewRuntime(ds, Options{Algorithm: subiso.VF2{}})
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheEnabled() {
		t.Error("cache should be disabled without config")
	}
	if _, err := r.SubgraphQuery(nil); err == nil {
		t.Error("nil query accepted")
	}
	if r.Algorithm().Name() != "VF2" {
		t.Error("Algorithm accessor wrong")
	}
	if r.Dataset() != ds {
		t.Error("Dataset accessor wrong")
	}
}

func TestBaselineMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds, _ := newTestDataset(rng, 12)
	r, err := NewRuntime(ds, Options{Algorithm: subiso.VF2Plus{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ids := ds.LiveIDs()
		src := ds.Graph(ids[rng.Intn(len(ids))])
		q := testutil.BFSExtract(rng, src, rng.Intn(src.NumVertices()), 1+rng.Intn(5))
		res, err := r.SubgraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want := testutil.GroundTruthSub(ds, q)
		if !res.Answer.Equal(want) {
			t.Fatalf("baseline answer %v, want %v", res.Answer, want)
		}
		if res.Stats.SubIsoTests != ds.LiveCount() {
			t.Fatalf("baseline must test every live graph: %d vs %d",
				res.Stats.SubIsoTests, ds.LiveCount())
		}
		if res.Stats.Overhead != 0 {
			t.Fatal("baseline must have zero cache overhead")
		}
	}
}

// runScenario drives a randomized interleaving of queries and dataset
// changes through a cached runtime, checking every answer against ground
// truth. It is the executable form of Theorems 3 and 6.
func runScenario(t *testing.T, seed int64, model cache.Model, policy cache.Policy, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds, pool := newTestDataset(rng, 10)
	r := cachedRuntime(t, ds, model, policy)

	for step := 0; step < steps; step++ {
		// Interleave changes between queries.
		if rng.Float64() < 0.3 {
			nOps := 1 + rng.Intn(3)
			for i := 0; i < nOps; i++ {
				testutil.RandomChange(rng, ds, pool)
			}
		}
		// Build a query: usually extracted from a live graph (non-empty
		// answers, cache-hit friendly), sometimes fully random.
		var q *graph.Graph
		ids := ds.LiveIDs()
		if len(ids) == 0 {
			t.Fatal("dataset drained")
		}
		if rng.Float64() < 0.8 {
			src := ds.Graph(ids[rng.Intn(len(ids))])
			q = testutil.BFSExtract(rng, src, rng.Intn(src.NumVertices()), 1+rng.Intn(6))
		} else {
			q = testutil.RandomGraph(rng, 6, 3, 0.4)
		}

		kindSub := rng.Float64() < 0.7
		var (
			res *Result
			err error
		)
		if kindSub {
			res, err = r.SubgraphQuery(q)
		} else {
			res, err = r.SupergraphQuery(q)
		}
		if err != nil {
			t.Fatal(err)
		}
		var want = testutil.GroundTruthSub(ds, q)
		if !kindSub {
			want = testutil.GroundTruthSuper(ds, q)
		}
		if !res.Answer.Equal(want) {
			t.Fatalf("step %d (%s %v): answer %v, want %v (tests=%d/%d hits=%d/%d exact=%v empty=%v)",
				step, model, kindSub, res.Answer, want,
				res.Stats.SubIsoTests, res.Stats.CandidatesBefore,
				res.Stats.ContainingHits, res.Stats.ContainedHits,
				res.Stats.ExactHit, res.Stats.EmptyShortcut)
		}
		if res.Stats.SubIsoTests+res.Stats.TestsSaved != res.Stats.CandidatesBefore {
			t.Fatalf("step %d: test accounting broken: %d+%d != %d", step,
				res.Stats.SubIsoTests, res.Stats.TestsSaved, res.Stats.CandidatesBefore)
		}
		// Invariant: after a query, every entry's validity indicator is
		// confined to live ids.
		live := ds.LiveSnapshot()
		r.cache.ForEach(func(e *cache.Entry) bool {
			if !e.Valid.IsSubsetOf(live) {
				t.Fatalf("step %d: entry %v claims validity outside live set", step, e)
			}
			return true
		})
	}
}

func TestTheoremsCONAgainstGroundTruth(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		runScenario(t, seed, cache.ModelCON, cache.PolicyHD, 60)
	}
}

func TestTheoremsEVIAgainstGroundTruth(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		runScenario(t, seed, cache.ModelEVI, cache.PolicyHD, 60)
	}
}

func TestTheoremsAcrossPolicies(t *testing.T) {
	for _, p := range []cache.Policy{cache.PolicyPIN, cache.PolicyPINC, cache.PolicyLRU, cache.PolicyLFU} {
		runScenario(t, 7, cache.ModelCON, p, 50)
	}
}

func TestExactMatchOptimalCase(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, _ := newTestDataset(rng, 8)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	src := ds.Graph(0)
	q := testutil.BFSExtract(rng, src, 0, 4)

	res1, err := r.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.ExactHit {
		t.Fatal("first execution cannot be an exact hit")
	}
	// identical re-submission: must return the cached answer with zero
	// sub-iso tests.
	res2, err := r.SubgraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.ExactHit {
		t.Fatal("re-submitted query should be an exact hit")
	}
	if res2.Stats.SubIsoTests != 0 {
		t.Fatalf("exact hit ran %d sub-iso tests", res2.Stats.SubIsoTests)
	}
	if !res2.Answer.Equal(res1.Answer) {
		t.Fatal("exact hit returned different answer")
	}

	// After a dataset change that invalidates some bit, the exact path
	// must not fire (entry no longer fully valid)...
	live := ds.LiveIDs()
	victim := live[0]
	g := ds.Graph(victim)
	es := g.EdgeList()
	if err := ds.UpdateRemoveEdge(victim, int(es[0].U), int(es[0].V)); err != nil {
		t.Fatal(err)
	}
	res3, err := r.SubgraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.ExactHit {
		t.Fatal("exact hit fired on a partially invalid entry")
	}
	if !res3.Answer.Equal(testutil.GroundTruthSub(ds, q)) {
		t.Fatal("post-change answer wrong")
	}
}

func TestExactHitStillFiresAfterUAOnPositive(t *testing.T) {
	// UA-exclusive changes on graphs with positive cached answers keep
	// the entry fully valid, so the exact-match case keeps firing.
	rng := rand.New(rand.NewSource(21))
	ds, _ := newTestDataset(rng, 6)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	src := ds.Graph(2)
	q := testutil.BFSExtract(rng, src, 0, 3)
	res1, err := r.SubgraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// find a positive answer graph and add an absent edge to it
	pos := res1.Answer.Indices()
	if len(pos) == 0 {
		t.Skip("no positive answers in this draw")
	}
	target := pos[0]
	g := ds.Graph(target)
	added := false
	for u := 0; u < g.NumVertices() && !added; u++ {
		for v := u + 1; v < g.NumVertices() && !added; v++ {
			if !g.HasEdge(u, v) {
				if err := ds.UpdateAddEdge(target, u, v); err != nil {
					t.Fatal(err)
				}
				added = true
			}
		}
	}
	if !added {
		t.Skip("target graph is complete")
	}
	res2, err := r.SubgraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.ExactHit {
		t.Fatal("UA on a positive answer should preserve full validity")
	}
	if !res2.Answer.Equal(testutil.GroundTruthSub(ds, q)) {
		t.Fatal("answer drifted")
	}
}

func TestEmptyShortcutOptimalCase(t *testing.T) {
	// Dataset of small paths with labels {0,1}; query with label 9 has a
	// guaranteed-empty answer. A follow-up query containing the first one
	// must short-circuit to ∅ without tests.
	ds := dataset.New([]*graph.Graph{
		graph.Path(0, 1, 0), graph.Path(1, 1), graph.Cycle(0, 1, 0),
	})
	r, err := NewRuntime(ds, Options{
		Algorithm: subiso.VF2{},
		Cache:     &cache.Config{Capacity: 8, WindowSize: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	small := graph.Path(9, 9)
	res1, err := r.SubgraphQuery(small)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Answer.Any() {
		t.Fatal("label-9 query should have empty answer")
	}
	big := graph.Path(9, 9, 9) // contains small
	res2, err := r.SubgraphQuery(big)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.EmptyShortcut {
		t.Fatal("empty-answer shortcut did not fire")
	}
	if res2.Stats.SubIsoTests != 0 || res2.Answer.Any() {
		t.Fatal("shortcut must return empty answer with zero tests")
	}

	// After an edge addition (UA) anywhere, negatives stay valid only if
	// the ops were UR-exclusive — a UA must disable the shortcut.
	if err := ds.UpdateAddEdge(1, 0, 1); err == nil {
		t.Fatal("expected duplicate-edge error") // path(1,1) already has 0-1
	}
	if err := ds.UpdateRemoveEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	// UR-exclusive: negatives survive; shortcut still fires.
	res3, err := r.SubgraphQuery(graph.Path(9, 9, 9, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Stats.EmptyShortcut {
		t.Fatal("UR-exclusive change should preserve the shortcut")
	}
}

func TestDirectHitPrunesTests(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds, _ := newTestDataset(rng, 10)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	src := ds.Graph(3)
	big := testutil.BFSExtract(rng, src, 0, 6)
	if _, err := r.SubgraphQuery(big); err != nil {
		t.Fatal(err)
	}
	// a subgraph of the cached query: its valid positives come for free
	small := testutil.BFSExtract(rng, big, 0, 3)
	res, err := r.SubgraphQuery(small)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ContainingHits == 0 {
		t.Fatal("expected a containing hit")
	}
	want := testutil.GroundTruthSub(ds, small)
	if !res.Answer.Equal(want) {
		t.Fatalf("answer %v, want %v", res.Answer, want)
	}
}

func TestSupergraphQueryUsesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds, _ := newTestDataset(rng, 8)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	// supergraph query: big query graph, dataset graphs inside it
	big := testutil.RandomConnectedGraph(rng, 14, 3, 0.25)
	res1, err := r.SupergraphQuery(big)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Answer.Equal(testutil.GroundTruthSuper(ds, big)) {
		t.Fatal("supergraph answer wrong")
	}
	// re-submission → exact hit
	res2, err := r.SupergraphQuery(big.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.ExactHit || res2.Stats.SubIsoTests != 0 {
		t.Fatalf("supergraph exact hit failed: %+v", res2.Stats)
	}
}

func TestKindsDoNotCrossContaminate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ds, _ := newTestDataset(rng, 8)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	q := testutil.BFSExtract(rng, ds.Graph(0), 0, 4)
	if _, err := r.SubgraphQuery(q); err != nil {
		t.Fatal(err)
	}
	// same graph as a supergraph query must not be answered by the
	// sub-kind entry's bits
	res, err := r.SupergraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ExactHit {
		t.Fatal("exact hit across kinds")
	}
	if !res.Answer.Equal(testutil.GroundTruthSuper(ds, q)) {
		t.Fatal("cross-kind contamination produced a wrong answer")
	}
}

// TestMethodIndependence verifies the paper's §7.2 claim: under a fixed
// configuration, the pruned candidate set per query is identical whatever
// SI method is plugged in as Method M.
func TestMethodIndependence(t *testing.T) {
	type trace struct {
		tests []int
	}
	run := func(algo subiso.Algorithm) trace {
		rng := rand.New(rand.NewSource(77)) // same seed → same workload
		ds, pool := newTestDataset(rng, 10)
		r, err := NewRuntime(ds, Options{
			Algorithm: algo,
			Cache: &cache.Config{
				Capacity: 8, WindowSize: 3,
				Model:  cache.ModelCON,
				Policy: cache.PolicyPIN, // time-independent scoring
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var tr trace
		for step := 0; step < 50; step++ {
			if rng.Float64() < 0.3 {
				testutil.RandomChange(rng, ds, pool)
			}
			ids := ds.LiveIDs()
			src := ds.Graph(ids[rng.Intn(len(ids))])
			q := testutil.BFSExtract(rng, src, rng.Intn(src.NumVertices()), 1+rng.Intn(5))
			res, err := r.SubgraphQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			tr.tests = append(tr.tests, res.Stats.SubIsoTests)
		}
		return tr
	}
	base := run(subiso.VF2{})
	for _, algo := range []subiso.Algorithm{subiso.VF2Plus{}, subiso.GraphQL{}} {
		got := run(algo)
		for i := range base.tests {
			if got.tests[i] != base.tests[i] {
				t.Fatalf("%s: query %d tested %d candidates, VF2 tested %d",
					algo.Name(), i, got.tests[i], base.tests[i])
			}
		}
	}
}

func TestMetricsAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ds, _ := newTestDataset(rng, 6)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	q := testutil.BFSExtract(rng, ds.Graph(0), 0, 3)
	if _, err := r.SubgraphQuery(q); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubgraphQuery(q.Clone()); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.Queries != 2 || m.MeasuredQueries != 2 {
		t.Fatalf("Queries = %d", m.Queries)
	}
	if m.ExactHits != 1 || m.ZeroTestQueries != 1 {
		t.Fatalf("ExactHits=%d ZeroTest=%d", m.ExactHits, m.ZeroTestQueries)
	}
	if m.SubIsoTests.Sum() != float64(ds.LiveCount()) {
		t.Fatalf("test sum = %g", m.SubIsoTests.Sum())
	}
	r.ResetMeasurements()
	m = r.Metrics()
	if m.MeasuredQueries != 0 || m.Queries != 2 {
		t.Fatalf("reset wrong: %+v", m)
	}
	if r.CacheSize() < 0 {
		t.Fatal("CacheSize broken")
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
}

func TestEVIPurgesOnChange(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ds, pool := newTestDataset(rng, 8)
	r := cachedRuntime(t, ds, cache.ModelEVI, cache.PolicyHD)
	q := testutil.BFSExtract(rng, ds.Graph(0), 0, 3)
	if _, err := r.SubgraphQuery(q); err != nil {
		t.Fatal(err)
	}
	if r.cache.WindowLen()+r.cache.Size() == 0 {
		t.Fatal("entry not cached")
	}
	testutil.RandomChange(rng, ds, pool)
	res, err := r.SubgraphQuery(q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ExactHit {
		t.Fatal("EVI must not hit after a change")
	}
	// the purge happened during this query; only the new entry remains
	if got := r.cache.WindowLen() + r.cache.Size(); got != 1 {
		t.Fatalf("cache holds %d entries after purge, want 1", got)
	}
}
