package core

import (
	"context"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
)

// This file implements the Runtime side of the background cache-repair
// pipeline. The CON model of §5.2 only ever *clears* validity bits; a
// cleared bit stays dead until a later query happens to re-verify that
// (entry, graph) pair on the hot path, so update-heavy traffic steadily
// bleeds the cache's pruning power. Repair re-verifies invalidated
// pairs off the query path and restores the bits.
//
// The pipeline is split into three phases so a serving shard can run
// the expensive middle phase on background goroutines while the owner
// goroutine keeps serving:
//
//	PlanRepairs   — owner only: drains the cache's repair queue and
//	                captures the current graph version of each pair.
//	VerifyRepairs — safe off the owner: re-runs the entry's relation
//	                against the captured (immutable) graph with a
//	                forked compiled matcher; touches no mutable state.
//	CommitRepairs — owner only: restores Answer/Valid bits for results
//	                whose graph version is unchanged (pointer check) and
//	                whose entry is still resident.
//
// # Why the commit is sound
//
// Dataset graphs are immutable values: UA/UR replace the graph pointer
// and DEL clears it, so pointer equality between plan and commit proves
// no logged operation touched the graph in between. The restored bit
// therefore records a relation verified against the *current* graph
// version. If the cache's AppliedSeq still trails the dataset log, the
// next Validate sweep re-examines the bit against the pending records;
// Algorithm 2's survival rules are monotone (UA preserves positives, UR
// preserves negatives), and every pending operation on the graph
// happened at or before the verified version, so a surviving bit
// remains a true fact and a cleared bit is merely conservative. Exactly
// the Theorem 3/6 precondition — valid bits are true facts — is
// preserved, which is what the differential oracle test asserts.

// RepairJob is one planned re-verification: an invalidated (entry,
// graph) pair plus the graph version captured at plan time. The fields
// are unexported; serving layers treat jobs as opaque tokens between
// PlanRepairs, VerifyRepairs and CommitRepairs.
type RepairJob struct {
	entry *cache.Entry
	id    int
	g     *graph.Graph // graph version at plan time (immutable)
}

// RepairResult carries one verified relation back to CommitRepairs.
type RepairResult struct {
	job      RepairJob
	positive bool
	cpu      time.Duration
}

// PendingRepairs returns the number of invalidated pairs queued for
// repair (0 when caching is disabled or no repair queue is configured).
func (r *Runtime) PendingRepairs() int {
	if r.cache == nil {
		return 0
	}
	return r.cache.PendingRepairs()
}

// PlanRepairs drains up to max queued pairs and captures the current
// graph version of each, grouping jobs by entry so VerifyRepairs
// compiles each entry's matcher once. Pairs whose graph has been
// deleted are dropped: a DEL'd id can never become valid again. Like
// every Runtime method it must run on the owner goroutine.
func (r *Runtime) PlanRepairs(max int) []RepairJob {
	if r.cache == nil {
		return nil
	}
	tasks := r.cache.DrainRepairs(max)
	if len(tasks) == 0 {
		return nil
	}
	jobs := make([]RepairJob, 0, len(tasks))
	for _, t := range tasks {
		g := r.ds.Graph(t.GraphID)
		if g == nil {
			continue // deleted since invalidation
		}
		jobs = append(jobs, RepairJob{entry: t.Entry, id: t.GraphID, g: g})
	}
	// Group by entry (stable within the FIFO) so consecutive jobs share
	// a compiled matcher.
	sortJobsByEntry(jobs)
	r.m.RepairPlanned += int64(len(jobs))
	return jobs
}

// sortJobsByEntry stably groups jobs by entry ID, preserving graph-id
// order within a group. Insertion sort: batches are small (≤ the repair
// batch size) and mostly grouped already.
func sortJobsByEntry(jobs []RepairJob) {
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		k := i - 1
		for k >= 0 && (jobs[k].entry.ID > j.entry.ID ||
			(jobs[k].entry.ID == j.entry.ID && jobs[k].id > j.id)) {
			jobs[k+1] = jobs[k]
			k--
		}
		jobs[k+1] = j
	}
}

// VerifyRepairs re-verifies the planned jobs, fanning them out to up to
// parallelism workers. Each worker forks the entry's compiled matcher
// (own scratch, shared compiled artifacts) and tests the captured graph
// version; only immutable data is touched, so — uniquely among Runtime
// methods — VerifyRepairs is safe to call off the owner goroutine while
// the owner serves queries and updates.
func (r *Runtime) VerifyRepairs(jobs []RepairJob, parallelism int) []RepairResult {
	return r.VerifyRepairsCtx(context.Background(), jobs, parallelism)
}

// VerifyRepairsCtx is VerifyRepairs with cooperative cancellation:
// workers poll ctx between jobs and stop early when it is done. Only
// the results actually verified are returned — jobs abandoned by the
// cancellation are dropped, which is conservative and safe (their
// validity bits simply stay cleared; a later queue re-invalidation or
// hot-path re-verification can still restore them). CommitRepairs must
// therefore never see a zero-value RepairResult, and this compaction
// is what guarantees it.
func (r *Runtime) VerifyRepairsCtx(ctx context.Context, jobs []RepairJob, parallelism int) []RepairResult {
	if len(jobs) == 0 {
		return nil
	}
	if parallelism < 1 {
		parallelism = 1
	}
	// One base matcher per distinct entry, compiled once up front;
	// workers fork for private scratch.
	bases := make(map[*cache.Entry]*subiso.Matcher, 8)
	for _, j := range jobs {
		if _, ok := bases[j.entry]; !ok {
			bases[j.entry] = r.compileFor(j.entry)
		}
	}
	results := make([]RepairResult, len(jobs))
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	if parallelism == 1 {
		n := verifyRepairChunk(ctx, jobs, results, bases)
		return results[:n]
	}
	type span struct{ lo, n int }
	spans := make([]span, parallelism)
	done := make(chan struct{}, parallelism)
	for w := 0; w < parallelism; w++ {
		lo, hi := w*len(jobs)/parallelism, (w+1)*len(jobs)/parallelism
		go func(w, lo, hi int) {
			n := verifyRepairChunk(ctx, jobs[lo:hi], results[lo:hi], bases)
			spans[w] = span{lo: lo, n: n}
			done <- struct{}{}
		}(w, lo, hi)
	}
	for w := 0; w < parallelism; w++ {
		<-done
	}
	// Compact the per-chunk completed prefixes into one dense slice so
	// no unfilled zero-value result survives to the commit phase.
	out := results[:0]
	for _, sp := range spans {
		out = append(out, results[sp.lo:sp.lo+sp.n]...)
	}
	return out
}

// compileFor compiles the matcher testing an entry's recorded relation:
// for a sub entry "entry.Query ⊆ G", for a super entry "G ⊆ entry.Query"
// — the same shapes as the verification loop.
func (r *Runtime) compileFor(e *cache.Entry) *subiso.Matcher {
	if e.Kind == cache.KindSub {
		return subiso.CompileSub(e.Query, r.algo)
	}
	return subiso.CompileSuper(e.Query, r.algo)
}

// verifyRepairChunk runs one worker's share, forking a matcher per
// entry run (jobs are grouped by entry). It polls ctx between jobs and
// returns how many results it completed — always a prefix of out.
func verifyRepairChunk(ctx context.Context, jobs []RepairJob, out []RepairResult, bases map[*cache.Entry]*subiso.Matcher) int {
	var (
		m    *subiso.Matcher
		last *cache.Entry
	)
	done := ctx.Done()
	for i, j := range jobs {
		select {
		case <-done:
			return i
		default:
		}
		if j.entry != last {
			m = bases[j.entry].Fork()
			last = j.entry
		}
		t0 := time.Now()
		out[i] = RepairResult{job: j, positive: m.Contains(j.g), cpu: time.Since(t0)}
	}
	return len(jobs)
}

// CommitRepairs atomically restores the Answer/Valid bits of verified
// results on the owner goroutine. A result is applied only when the
// graph version is unchanged since plan time (pointer equality — any
// logged UA/UR/DEL replaces the pointer) and the entry is still
// resident; stale results are dropped and counted. Returns the number
// of bits restored.
func (r *Runtime) CommitRepairs(results []RepairResult) int {
	if r.cache == nil || len(results) == 0 {
		return 0
	}
	restored := 0
	for _, res := range results {
		r.m.RepairCPU += res.cpu
		r.hists.RepairVerify.Observe(res.cpu)
		if r.ds.Graph(res.job.id) != res.job.g {
			r.m.RepairStale++
			continue
		}
		if r.cache.RestoreBit(res.job.entry, res.job.id, res.positive) {
			restored++
		} else {
			r.m.RepairStale++
		}
	}
	r.m.RepairedBits += int64(restored)
	return restored
}

// Repair drains the pending repair queue through plan → verify → commit
// until it is empty, processing at most batch pairs per round (0 means
// a sensible default) with the given verification parallelism. It is
// the synchronous, owner-context form of the pipeline, used by
// single-threaded runtimes (and the differential oracle tests); serving
// shards run the three phases themselves so verification leaves the
// owner goroutine. Returns the total number of bits restored.
func (r *Runtime) Repair(batch, parallelism int) int {
	if batch <= 0 {
		batch = DefaultRepairBatch
	}
	total := 0
	for {
		jobs := r.PlanRepairs(batch)
		if len(jobs) == 0 {
			return total
		}
		total += r.CommitRepairs(r.VerifyRepairs(jobs, parallelism))
	}
}

// DefaultRepairBatch is the number of invalidated pairs a repair round
// drains at once: small enough that a round's commit job stays a brief
// pause between queries, large enough to amortize matcher compilation
// across each entry's invalidated bits.
const DefaultRepairBatch = 256

// ValidityRatio returns the fraction of (entry, live graph) validity
// bits currently set in the cache — 1 when caching is disabled or the
// cache is empty. It is the health metric the repair pipeline recovers
// after update churn.
func (r *Runtime) ValidityRatio() float64 {
	if r.cache == nil {
		return 1
	}
	return r.cache.ValidityRatio(r.ds.LiveSnapshot())
}

// Cache exposes the runtime's cache for inspection and invariant
// checking in tests (nil when caching is disabled). Production callers
// use CacheStats.
func (r *Runtime) Cache() *cache.Cache { return r.cache }
