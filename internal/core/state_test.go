package core

import (
	"math/rand"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/testutil"
)

// TestRuntimeStateRoundTrip is the core-level warm-restart differential:
// a runtime is warmed with queries and churn, its state exported and
// restored into a fresh runtime over a restored dataset, and from then
// on the two runtimes must behave *identically* — same answers, same
// hit classifications, same per-query statistics — under a further
// randomized query/update interleaving. Passing it means the snapshot
// captures everything query processing observes.
//
// The PIN policy keeps the comparison exact: it scores evictions purely
// by the (deterministic) R statistic. HD/PINC score by the *measured*
// per-test CPU cost, so even two cold runtimes fed the identical stream
// can evict different entries — a timing artifact, not a restore
// defect, and exactly why the policy bookkeeping (R, hits, recency) is
// persisted while measured timings are allowed to re-learn.
func TestRuntimeStateRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		ds, pool := newTestDataset(rng, 24)
		rt := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyPIN)

		queries := make([]*graph.Graph, 14)
		for i := range queries {
			queries[i] = testutil.RandomConnectedGraph(rng, 2+rng.Intn(4), 3, 0.3)
		}
		churn := func(d *dataset.Dataset, r *rand.Rand) {
			for k := 0; k < 3; k++ {
				ids := d.LiveIDs()
				id := ids[r.Intn(len(ids))]
				g := d.Graph(id)
				switch {
				case r.Intn(2) == 0 && g.NumEdges() > 0:
					e := g.EdgeList()[r.Intn(g.NumEdges())]
					_ = d.UpdateRemoveEdge(id, int(e.U), int(e.V))
				case g.NumVertices() >= 2:
					u, v := r.Intn(g.NumVertices()), r.Intn(g.NumVertices())
					if u != v && !g.HasEdge(u, v) {
						_ = d.UpdateAddEdge(id, u, v)
					}
				}
			}
		}

		// Warm up with queries and churn; leave some pairs pending in
		// the repair queue so that state is exercised too.
		for i, q := range queries {
			if i%2 == 0 {
				if _, err := rt.SubgraphQuery(q); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := rt.SupergraphQuery(q); err != nil {
					t.Fatal(err)
				}
			}
			if i%4 == 3 {
				churn(ds, rng)
			}
		}
		rt.Sync()

		st := rt.ExportState()
		ds2 := dataset.Restore(ds.Export())
		rt2 := cachedRuntime(t, ds2, cache.ModelCON, cache.PolicyPIN)
		if err := rt2.RestoreState(st); err != nil {
			t.Fatal(err)
		}
		testutil.RequireCacheIndex(t, rt2.Cache())

		// Identical evolution from the restore point on: interleave
		// queries (old, new and repeated), churn applied to *both*
		// datasets, and partial repair drains.
		rngA, rngB := rand.New(rand.NewSource(seed+100)), rand.New(rand.NewSource(seed+100))
		step := rand.New(rand.NewSource(seed + 7))
		for i := 0; i < 40; i++ {
			var q *graph.Graph
			switch step.Intn(3) {
			case 0:
				q = queries[step.Intn(len(queries))]
			case 1:
				q = testutil.RandomConnectedGraph(step, 2+step.Intn(4), 3, 0.3)
			default:
				q = pool[step.Intn(len(pool))]
			}
			kind := step.Intn(2)
			run := func(r *Runtime) *Result {
				var res *Result
				var err error
				if kind == 0 {
					res, err = r.SubgraphQuery(q)
				} else {
					res, err = r.SupergraphQuery(q)
				}
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ra, rb := run(rt), run(rt2)
			if !ra.Answer.Equal(rb.Answer) {
				t.Fatalf("seed %d, step %d: answers diverge: %v vs %v",
					seed, i, ra.AnswerIDs(), rb.AnswerIDs())
			}
			sa, sb := ra.Stats, rb.Stats
			sa.QueryTime, sb.QueryTime = 0, 0
			sa.VerifyTime, sb.VerifyTime = 0, 0
			sa.VerifyCPUTime, sb.VerifyCPUTime = 0, 0
			sa.HitTime, sb.HitTime = 0, 0
			sa.Overhead, sb.Overhead = 0, 0
			sa.ConsistencyTime, sb.ConsistencyTime = 0, 0
			if sa != sb {
				t.Fatalf("seed %d, step %d: stats diverge:\n a: %+v\n b: %+v", seed, i, sa, sb)
			}
			if i%5 == 4 {
				churn(ds, rngA)
				churn(ds2, rngB)
			}
			if i%7 == 6 {
				rt.Repair(16, 1)
				rt2.Repair(16, 1)
			}
			if i%10 == 9 {
				testutil.RequireCacheIndex(t, rt2.Cache())
			}
		}
	}
}

// TestRestoreStateRejects pins the guard rails.
func TestRestoreStateRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds, _ := newTestDataset(rng, 6)
	rt := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	if err := rt.RestoreState(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if err := rt.RestoreState(&RuntimeState{}); err == nil {
		t.Fatal("cache-less state accepted by a cached runtime")
	}
	// A snapshot ahead of the dataset log cannot be reconciled.
	ahead := rt.ExportState()
	ahead.Cache.AppliedSeq = ds.Seq() + 5
	rt2 := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	if err := rt2.RestoreState(ahead); err == nil {
		t.Fatal("snapshot ahead of the log accepted")
	}
	// Cache-less runtimes restore cache-less state.
	plain, err := NewRuntime(ds, Options{Algorithm: subiso.VF2{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.RestoreState(&RuntimeState{}); err != nil {
		t.Fatal(err)
	}
}
