package core

import (
	"math/rand"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/testutil"
)

// TestStageHistCountMatchesQueries pins the invariant the serving
// layer's /metrics tests rely on: the query histogram's count equals
// Metrics.Queries, and ResetMeasurements — which preserves Queries —
// does not disturb it.
func TestStageHistCountMatchesQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds, _ := newTestDataset(rng, 6)
	r := cachedRuntime(t, ds, cache.ModelCON, cache.PolicyHD)
	for i := 0; i < 9; i++ {
		q := testutil.BFSExtract(rng, ds.Graph(i%ds.LiveCount()), 0, 3)
		if _, err := r.SubgraphQuery(q); err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			r.ResetMeasurements()
		}
	}
	h := r.StageHists()
	if h == nil || h.Query == nil {
		t.Fatal("StageHists not allocated")
	}
	if got, want := h.Query.Count(), r.Metrics().Queries; got != want {
		t.Fatalf("query histogram count = %d, Metrics.Queries = %d", got, want)
	}
	// Every stage records exactly once per query.
	for name, c := range map[string]int64{
		"hit":         h.Hit.Count(),
		"verify":      h.Verify.Count(),
		"verify_cpu":  h.VerifyCPU.Count(),
		"overhead":    h.Overhead.Count(),
		"consistency": h.Consistency.Count(),
	} {
		if c != h.Query.Count() {
			t.Fatalf("%s histogram count = %d, want %d", name, c, h.Query.Count())
		}
	}
	if h.Query.Quantile(0.99) < h.Query.Quantile(0.5) {
		t.Fatal("p99 below p50")
	}
}
