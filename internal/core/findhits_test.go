package core

// Differential tests pinning the two hit-discovery paths to each other:
// the index-backed findHitsIndexed must classify every cache entry
// (direct / restrict / iso) exactly as the linear-scan reference
// findHitsScan, in the same order, under randomized workloads with
// evictions, purges, refreshes and background repair churning the cache.
// The same loop also pins the marginal R-crediting property: per query,
// the total credit handed to cache entries never exceeds the number of
// candidates Method M would have tested.

import (
	"fmt"
	"math/rand"
	"testing"

	"gcplus/internal/cache"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/subiso"
	"gcplus/internal/testutil"
)

// hitSystem builds a cached runtime over a random dataset for the
// differential properties.
func hitSystem(t testing.TB, rng *rand.Rand, n int, cfg cache.Config) (*Runtime, []*graph.Graph) {
	t.Helper()
	pool := make([]*graph.Graph, n)
	for i := range pool {
		pool[i] = testutil.RandomConnectedGraph(rng, 4+rng.Intn(8), 4, 0.2)
	}
	rt, err := NewRuntime(dataset.New(pool), Options{
		Algorithm: subiso.VF2{},
		Cache:     &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt, pool
}

func hitQuery(rng *rand.Rand, ds *dataset.Dataset, history []*graph.Graph) *graph.Graph {
	if len(history) > 0 && rng.Float64() < 0.35 {
		return history[rng.Intn(len(history))]
	}
	ids := ds.LiveIDs()
	g := ds.Graph(ids[rng.Intn(len(ids))])
	q := testutil.BFSExtract(rng, g, rng.Intn(g.NumVertices()), 1+rng.Intn(4))
	if q.NumVertices() == 0 {
		return graph.Path(g.Label(0))
	}
	return q
}

func sameEntries(a, b []*cache.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFindHitsIndexedMatchesScan drives a cached runtime through
// randomized queries, dataset changes, repair drains and purges, and at
// every step asserts that the index-backed and linear-scan hit
// discovery return identical classifications — same direct and restrict
// slices (same entries, same order), same iso entry, same hit counters
// — and that the index examined no more entries than the scan.
func TestFindHitsIndexedMatchesScan(t *testing.T) {
	for _, seed := range []int64{3, 11, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			rt, pool := hitSystem(t, rng, 24, cache.Config{
				Capacity:    20,
				WindowSize:  4,
				RepairQueue: 256,
			})
			if !rt.cache.QueryIndexEnabled() {
				t.Fatal("query index should be on by default")
			}
			var history []*graph.Graph
			for step := 0; step < 160; step++ {
				// Churn: dataset changes (invalidation), occasional
				// repair drains (bit restores), rare purges.
				if rng.Intn(3) == 0 {
					testutil.RandomChange(rng, rt.ds, pool)
				}
				if rng.Intn(5) == 0 {
					rt.Sync()
					rt.Repair(1+rng.Intn(8), 1)
				}
				if rng.Intn(40) == 0 {
					rt.cache.Purge()
				}
				testutil.RequireCacheIndex(t, rt.cache)

				q := hitQuery(rng, rt.ds, history)
				history = append(history, q)
				kind := cache.KindSub
				if rng.Intn(2) == 1 {
					kind = cache.KindSuper
				}

				var stScan, stIdx QueryStats
				dScan, rScan, isoScan := rt.findHitsScan(q, kind, &stScan)
				dIdx, rIdx, isoIdx := rt.findHitsIndexed(q, kind, &stIdx)
				if !sameEntries(dScan, dIdx) {
					t.Fatalf("step %d: direct hits diverge: scan %v, index %v", step, dScan, dIdx)
				}
				if !sameEntries(rScan, rIdx) {
					t.Fatalf("step %d: restrict hits diverge: scan %v, index %v", step, rScan, rIdx)
				}
				if isoScan != isoIdx {
					t.Fatalf("step %d: iso diverges: scan %v, index %v", step, isoScan, isoIdx)
				}
				if stScan.ContainingHits != stIdx.ContainingHits ||
					stScan.ContainedHits != stIdx.ContainedHits ||
					stScan.IsoHits != stIdx.IsoHits {
					t.Fatalf("step %d: hit counters diverge: scan %+v, index %+v", step, stScan, stIdx)
				}
				// On the fallback path HitCandidates is a distinct
				// count ≤ the scan's; the relation fast path adds its
				// probe on top, but probe ⊆ same-kind entries and
				// related ⊆ hits, so twice the scan's work bounds both.
				if stIdx.HitCandidates > 2*stScan.HitCandidates+1 {
					t.Fatalf("step %d: index examined %d entries, scan only %d",
						step, stIdx.HitCandidates, stScan.HitCandidates)
				}

				// Run the query for real so the cache keeps evolving
				// (admissions, evictions, refreshes), and pin the
				// marginal-credit property along the way.
				requireCreditsBounded(t, rt, q, kind)
			}
		})
	}
}

// requireCreditsBounded executes one query and asserts Σ(R deltas)
// across all cache entries ≤ CandidatesBefore: with marginal crediting,
// overlapping hits cannot be credited for the same spared test twice.
func requireCreditsBounded(t *testing.T, rt *Runtime, q *graph.Graph, kind cache.Kind) {
	t.Helper()
	before := make(map[*cache.Entry]float64)
	rt.cache.ForEach(func(e *cache.Entry) bool {
		before[e] = e.R
		return true
	})
	var res *Result
	var err error
	if kind == cache.KindSub {
		res, err = rt.SubgraphQuery(q)
	} else {
		res, err = rt.SupergraphQuery(q)
	}
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	rt.cache.ForEach(func(e *cache.Entry) bool {
		if prev, ok := before[e]; ok {
			sum += e.R - prev
		}
		return true
	})
	if cb := float64(res.Stats.CandidatesBefore); sum > cb {
		t.Fatalf("query credited %.0f spared tests, only %0.f candidates existed", sum, cb)
	}
}

// TestOverlappingDirectHitsCreditMarginally is the deterministic
// regression for the R-crediting bug: two cached queries that both
// contain the probe and answer the same graphs must split the spared
// tests, not each claim the full set.
func TestOverlappingDirectHitsCreditMarginally(t *testing.T) {
	// Every dataset graph contains the probe path(1,2) and both cached
	// query shapes path(1,2,3) and path(3,1,2)... use two distinct
	// supergraphs of the probe.
	mk := func() *graph.Graph {
		b := graph.NewBuilder()
		v1 := b.AddVertex(1)
		v2 := b.AddVertex(2)
		v3 := b.AddVertex(3)
		v4 := b.AddVertex(4)
		b.AddEdge(v1, v2)
		b.AddEdge(v2, v3)
		b.AddEdge(v1, v4)
		return b.MustBuild()
	}
	var pool []*graph.Graph
	for i := 0; i < 6; i++ {
		pool = append(pool, mk())
	}
	rt, err := NewRuntime(dataset.New(pool), Options{
		Algorithm: subiso.VF2{},
		Cache:     &cache.Config{Capacity: 10, WindowSize: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed two overlapping direct hits for the probe: both contain
	// path(1,2), both answer all six graphs.
	seeds := []*graph.Graph{graph.Path(1, 2, 3), graph.Path(4, 1, 2)}
	for _, s := range seeds {
		res, err := rt.SubgraphQuery(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Answer.Count(); got != 6 {
			t.Fatalf("seed query answered %d graphs, want 6", got)
		}
	}
	requireCreditsBounded(t, rt, graph.Path(1, 2), cache.KindSub)
}

// benchHitRuntime returns a runtime whose cache has been warmed with up
// to n distinct queries (isomorphic draws refresh in place, so the
// final size can fall short on small pools), for the findHits
// benchmarks.
func benchHitRuntime(b *testing.B, n int, disableIndex bool) (*Runtime, []*graph.Graph) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	rt, _ := hitSystem(b, rng, 200, cache.Config{
		Capacity:        n,
		WindowSize:      20,
		DisableHitIndex: disableIndex,
	})
	var queries []*graph.Graph
	for i := 0; i < n && rt.cache.Size()+rt.cache.WindowLen() < n; i++ {
		ids := rt.ds.LiveIDs()
		g := rt.ds.Graph(ids[rng.Intn(len(ids))])
		q := testutil.BFSExtract(rng, g, rng.Intn(g.NumVertices()), 1+rng.Intn(6))
		if q.NumVertices() == 0 {
			continue
		}
		queries = append(queries, q)
		if _, err := rt.SubgraphQuery(q); err != nil {
			b.Fatal(err)
		}
	}
	return rt, queries
}

func benchmarkFindHits(b *testing.B, entries int, indexed bool) {
	rt, queries := benchHitRuntime(b, entries, !indexed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st QueryStats
		q := queries[i%len(queries)]
		rt.findHits(q, cache.KindSub, &st)
	}
}

func BenchmarkFindHitsScan1000(b *testing.B)    { benchmarkFindHits(b, 1000, false) }
func BenchmarkFindHitsIndexed1000(b *testing.B) { benchmarkFindHits(b, 1000, true) }
func BenchmarkFindHitsScan4000(b *testing.B)    { benchmarkFindHits(b, 4000, false) }
func BenchmarkFindHitsIndexed4000(b *testing.B) { benchmarkFindHits(b, 4000, true) }
