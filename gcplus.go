package gcplus

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"gcplus/internal/cache"
	"gcplus/internal/changeplan"
	"gcplus/internal/core"
	"gcplus/internal/dataset"
	"gcplus/internal/graph"
	"gcplus/internal/router"
	"gcplus/internal/subiso"
	"gcplus/internal/synthetic"
)

// Re-exported graph types: the full graph construction and codec API of
// internal/graph is part of the public surface.
type (
	// Graph is a labelled undirected graph (§3 of the paper).
	Graph = graph.Graph
	// Label is a vertex label.
	Label = graph.Label
	// GraphBuilder incrementally constructs a Graph.
	GraphBuilder = graph.Builder
	// Edge is an undirected edge with U < V.
	Edge = graph.Edge
)

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// PathGraph, CycleGraph, StarGraph and CliqueGraph are convenience
// constructors for common query shapes.
func PathGraph(labels ...Label) *Graph     { return graph.Path(labels...) }
func CycleGraph(labels ...Label) *Graph    { return graph.Cycle(labels...) }
func StarGraph(c Label, l ...Label) *Graph { return graph.Star(c, l...) }
func CliqueGraph(labels ...Label) *Graph   { return graph.Clique(labels...) }

// ParseGraphs reads graphs in the line-oriented text format
// ("t <name>" / "v <id> <label>" / "e <u> <v>").
func ParseGraphs(r io.Reader) ([]*Graph, error) { return graph.Parse(r) }

// WriteGraphs writes graphs in the text format.
func WriteGraphs(w io.Writer, gs []*Graph) error { return graph.Write(w, gs) }

// Model selects the cache-consistency model.
type Model = cache.Model

const (
	// CON keeps the cache across dataset changes, refreshing validity
	// indicators (the paper's headline model).
	CON = cache.ModelCON
	// EVI evicts the whole cache on any dataset change.
	EVI = cache.ModelEVI
)

// Policy selects the cache-replacement policy.
type Policy = cache.Policy

const (
	// HD is the paper's hybrid default policy.
	HD = cache.PolicyHD
	// PIN scores entries by spared sub-iso tests.
	PIN = cache.PolicyPIN
	// PINC weighs spared tests by their estimated cost.
	PINC = cache.PolicyPINC
	// LRU and LFU are classic baselines.
	LRU = cache.PolicyLRU
	// LFU evicts the least frequently contributing entry.
	LFU = cache.PolicyLFU
)

// QueryStats instruments one query execution; see the field documentation
// in the core runtime.
type QueryStats = core.QueryStats

// Metrics aggregates per-query statistics over a System's lifetime.
type Metrics = core.Metrics

// Options configures a System. The zero value gives the paper's defaults:
// VF2 as Method M, a CON cache of capacity 100 with a 20-query window and
// the HD replacement policy.
type Options struct {
	// Method names the sub-iso verifier: "VF2" (default), "VF2+", "GQL".
	Method string
	// Model is the consistency model (default CON).
	Model Model
	// Policy is the replacement policy (default HD).
	Policy Policy
	// CacheSize is the cache capacity in entries (default 100).
	CacheSize int
	// WindowSize is the admission window length (default 20).
	WindowSize int
	// DisableCache turns GC+ off entirely, leaving the raw Method M
	// (every live graph verified per query). Useful for baselines.
	DisableCache bool
	// VerifyParallelism bounds the intra-query verification worker pool:
	// after GC+ pruning, the surviving candidates are verified by up to
	// this many workers, each with its own compiled-matcher scratch.
	// 0 means GOMAXPROCS; 1 keeps verification sequential.
	VerifyParallelism int
	// DisableHitIndex turns the cache's query index off, so hit
	// discovery scans every cached entry linearly instead of asking the
	// index for candidates. The index is on by default; disabling it is
	// the reference/baseline mode for differential tests and benchmarks
	// (at the paper's capacity of 100 the difference is modest, at
	// capacities in the thousands the index is what keeps hit discovery
	// off the critical path).
	DisableHitIndex bool
	// EnablePlanner turns on the cost-based query planner: each query's
	// Method M algorithm and verification parallelism are chosen from
	// measured per-algorithm cost moments, and compiled plans (matchers,
	// fingerprints, containment memos) are cached keyed by a canonical
	// form of the query so isomorphic repeats skip compilation. Answers
	// are bit-identical with the planner off — every candidate algorithm
	// is exact.
	EnablePlanner bool
	// PlanCacheSize bounds the compiled-plan cache per runtime (0 = the
	// default of 256 plans; negative disables plan caching while keeping
	// cost-based algorithm selection). Only meaningful with
	// EnablePlanner.
	PlanCacheSize int
}

// System is a GC+ instance: an evolving dataset plus the semantic cache
// and query runtime. Not safe for concurrent use.
type System struct {
	ds *dataset.Dataset
	rt *core.Runtime
}

// Open builds a System over the initial dataset graphs, which receive ids
// 0..len(initial)-1. The slice is not copied; treat the graphs as owned
// by the System afterwards.
func Open(initial []*Graph, opts Options) (*System, error) {
	if opts.Method == "" {
		opts.Method = "VF2"
	}
	algo, err := subiso.New(opts.Method)
	if err != nil {
		return nil, err
	}
	ds := dataset.New(initial)
	coreOpts := core.Options{
		Algorithm:         algo,
		VerifyParallelism: opts.VerifyParallelism,
		EnablePlanner:     opts.EnablePlanner,
		PlanCacheSize:     opts.PlanCacheSize,
	}
	if !opts.DisableCache {
		coreOpts.Cache = &cache.Config{
			Capacity:        opts.CacheSize,
			WindowSize:      opts.WindowSize,
			Model:           opts.Model,
			Policy:          opts.Policy,
			DisableHitIndex: opts.DisableHitIndex,
		}
	}
	rt, err := core.NewRuntime(ds, coreOpts)
	if err != nil {
		return nil, err
	}
	return &System{ds: ds, rt: rt}, nil
}

// Result is a query outcome.
type Result struct {
	res *core.Result
}

// IDs returns the answer set as ascending dataset graph ids.
func (r *Result) IDs() []int { return r.res.AnswerIDs() }

// Contains reports whether dataset graph id is in the answer set.
func (r *Result) Contains(id int) bool { return r.res.Answer.Get(id) }

// Len returns the answer set size.
func (r *Result) Len() int { return r.res.Answer.Count() }

// Stats returns the execution statistics of this query.
func (r *Result) Stats() QueryStats { return r.res.Stats }

// SubgraphQuery returns all live dataset graphs containing q.
func (s *System) SubgraphQuery(q *Graph) (*Result, error) {
	res, err := s.rt.SubgraphQuery(q)
	if err != nil {
		return nil, err
	}
	return &Result{res: res}, nil
}

// SupergraphQuery returns all live dataset graphs contained in q.
func (s *System) SupergraphQuery(q *Graph) (*Result, error) {
	res, err := s.rt.SupergraphQuery(q)
	if err != nil {
		return nil, err
	}
	return &Result{res: res}, nil
}

// AddGraph inserts a new dataset graph (ADD), returning its id.
func (s *System) AddGraph(g *Graph) (int, error) { return s.ds.Add(g) }

// DeleteGraph removes dataset graph id (DEL).
func (s *System) DeleteGraph(id int) error { return s.ds.Delete(id) }

// AddEdge adds edge {u,v} to dataset graph id (UA).
func (s *System) AddEdge(id, u, v int) error { return s.ds.UpdateAddEdge(id, u, v) }

// RemoveEdge removes edge {u,v} from dataset graph id (UR).
func (s *System) RemoveEdge(id, u, v int) error { return s.ds.UpdateRemoveEdge(id, u, v) }

// Graph returns the current version of dataset graph id (nil if deleted).
func (s *System) Graph(id int) *Graph { return s.ds.Graph(id) }

// GraphCount returns the number of live dataset graphs.
func (s *System) GraphCount() int { return s.ds.LiveCount() }

// LiveIDs returns the live dataset graph ids in ascending order.
func (s *System) LiveIDs() []int { return s.ds.LiveIDs() }

// CacheSize returns the number of admitted cache entries.
func (s *System) CacheSize() int { return s.rt.CacheSize() }

// Metrics returns a snapshot of the aggregated query statistics.
func (s *System) Metrics() Metrics { return s.rt.Metrics() }

// ResetMetrics clears the aggregates (e.g. after a warm-up phase) while
// keeping the cache contents.
func (s *System) ResetMetrics() { s.rt.ResetMeasurements() }

// String describes the system configuration.
func (s *System) String() string {
	return fmt.Sprintf("gcplus.System(%s, %d graphs)", s.rt, s.ds.LiveCount())
}

// CacheEntryInfo is a read-only snapshot of one cached query, exposing
// the consistency machinery for inspection (examples, debugging, tests).
type CacheEntryInfo struct {
	// Query is the cached query graph's name.
	Query string
	// Kind is "sub" or "super".
	Kind string
	// Answer holds the dataset graph ids of the cached answer snapshot.
	Answer []int
	// Valid holds the ids on which the snapshot is still valid (CGvalid).
	Valid []int
	// SparedTests is the entry's cumulative R statistic.
	SparedTests float64
}

// CacheEntries snapshots the cache contents (window first).
func (s *System) CacheEntries() []CacheEntryInfo {
	var out []CacheEntryInfo
	s.rt.ForEachCacheEntry(func(query string, kind string, answer, valid []int, spared float64) {
		out = append(out, CacheEntryInfo{Query: query, Kind: kind, Answer: answer, Valid: valid, SparedTests: spared})
	})
	return out
}

// ServeOptions configures a Server. The embedded Options configure each
// shard's runtime exactly like a single-threaded System, with one twist:
// a zero VerifyParallelism here means GOMAXPROCS divided by the shard
// count (min 1), so shard-level and intra-query fan-out together stay
// near the core count instead of oversubscribing it.
type ServeOptions struct {
	Options
	// Shards is the number of runtime shards; each owns a partition of
	// the dataset, its own GC+ cache and one worker goroutine
	// (default 4).
	Shards int
	// EagerValidate reconciles shard caches (CON validation / EVI purge)
	// at update time instead of lazily before the next query, trading
	// update latency for query latency.
	EagerValidate bool
	// RepairParallelism bounds each shard's background repair worker:
	// validity bits cleared by CON validation are re-verified off the
	// query path and restored when the relation still holds, so
	// update-heavy traffic stops bleeding hit rate. 0 means 1 worker per
	// shard; see DisableRepair to turn the pipeline off.
	RepairParallelism int
	// DisableRepair disables background cache repair, leaving cleared
	// validity bits dead until a future query re-verifies them on the
	// hot path.
	DisableRepair bool
	// DataDir enables the durability subsystem: update batches are
	// written to a per-shard WAL and dataset + cache state is
	// snapshotted periodically under this directory, so a restarted
	// server warm-restarts — same dataset, same warmed cache entries —
	// instead of rebuilding from zero. A boot that finds recoverable
	// state in DataDir ignores the initial graphs. Empty disables
	// persistence.
	DataDir string
	// SnapshotEvery is the number of update batches between automatic
	// snapshots (0 = the serving layer's default).
	SnapshotEvery int
	// DisableWAL keeps periodic snapshots but skips the write-ahead
	// log: a crash loses the batches applied since the last snapshot.
	DisableWAL bool
	// NoSync skips the per-append WAL fsync (snapshots still fsync):
	// batches survive a process crash but not a machine crash.
	NoSync bool
	// SlowLogThreshold enables the slow-query log: queries whose wall
	// time reaches the threshold are captured (with their per-shard
	// stage trace) into a bounded ring served at GET /debug/slowlog.
	// Zero disables capture.
	SlowLogThreshold time.Duration
	// SlowLogSize bounds the slow-query ring (0 = default of 128).
	SlowLogSize int
	// TraceSampleRate is the distributed-tracing head-sampling rate: the
	// fraction of requests whose full span tree — router admission,
	// fan-out and merge plus every shard's queue/plan/consistency/hit/
	// verify subtree — is collected and retained, served at
	// GET /debug/traces. 0 means the serving layer's default (0.01);
	// negative disables tracing. Anomalous requests (slow, error, shed,
	// deadline-exceeded, degraded) are retained regardless of the rate.
	TraceSampleRate float64
	// TraceStoreSize bounds the in-memory trace store's normal ring
	// (0 = default of 256); anomalous traces keep a reserved ring of a
	// quarter that size.
	TraceStoreSize int
	// ReadyMaxPendingRepairs is the readiness threshold for GET /readyz:
	// the endpoint reports 503 while the summed repair backlog exceeds
	// it. 0 means the default repair-queue capacity; negative means 0
	// (ready only with an empty backlog).
	ReadyMaxPendingRepairs int
	// QueryTimeout bounds each query's end-to-end latency: requests
	// that exceed it are cancelled at the next cooperative checkpoint
	// and fail with a deadline error (HTTP 504). Zero means no deadline
	// beyond whatever context the caller supplies.
	QueryTimeout time.Duration
	// UpdateTimeout bounds each update batch the same way (a batch that
	// already acquired the writer lock still applies atomically; the
	// deadline is checked before application begins).
	UpdateTimeout time.Duration
	// MaxInFlightQueries bounds concurrently admitted queries; excess
	// requests are shed immediately with an overload error (HTTP 429)
	// instead of queueing without bound. 0 means the serving layer's
	// default (64); negative disables admission control.
	MaxInFlightQueries int
	// MaxInFlightUpdates bounds concurrently admitted update batches
	// the same way (default 16).
	MaxInFlightUpdates int
	// WALPolicy selects how a WAL append failure that survives retries
	// is surfaced: WALPolicyFailUpdate (default) fails the update so
	// callers know durability was not achieved; WALPolicyDegradeToVolatile
	// acks the update and latches a volatile-WAL alarm instead. Either
	// way the shard stops claiming durability for new batches until a
	// snapshot rotation heals the gap.
	WALPolicy string
	// DisableDegradation turns the overload pressure controller off:
	// the server never caps verify parallelism or serves cache-bypass
	// under repair-backlog or queue pressure.
	DisableDegradation bool
	// Transport selects how the router reaches its shard hosts:
	// TransportLocal (default) for direct in-process calls, or
	// TransportLoopback to run every shard behind a real TCP connection
	// on 127.0.0.1 — the cluster seed. Answers, epochs and durability
	// semantics are identical over both.
	Transport string
	// Logger receives structured lifecycle events (recovery, snapshots,
	// WAL failures, repair-queue pressure). Nil discards them.
	Logger *slog.Logger
}

// Shard transports for ServeOptions.Transport.
const (
	// TransportLocal reaches shard hosts by direct in-process calls.
	TransportLocal = router.TransportLocal
	// TransportLoopback reaches each shard host over its own TCP
	// connection on 127.0.0.1, exercising the full wire path.
	TransportLoopback = router.TransportLoopback
)

// WAL failure policies for ServeOptions.WALPolicy.
const (
	// WALPolicyFailUpdate surfaces a persistent WAL append failure to
	// the updating caller (the batch is applied in memory but reported
	// non-durable).
	WALPolicyFailUpdate = router.WALPolicyFailUpdate
	// WALPolicyDegradeToVolatile acks the update and raises an
	// edge-triggered volatile-WAL alarm instead of failing it.
	WALPolicyDegradeToVolatile = router.WALPolicyDegradeToVolatile
)

// IsOverload reports whether err is an admission-control load-shed
// error (HTTP 429 from the wire API); such requests were not executed
// and are safe to retry after a backoff.
func IsOverload(err error) bool { return router.IsOverload(err) }

// UpdateOp describes one dataset change operation for Server.Update; use
// NewAddOp, NewDeleteOp, NewAddEdgeOp and NewRemoveEdgeOp to build them.
type UpdateOp = changeplan.Op

// NewAddOp describes an ADD of g.
func NewAddOp(g *Graph) UpdateOp { return changeplan.AddOp(g) }

// NewDeleteOp describes a DEL of graph id.
func NewDeleteOp(id int) UpdateOp { return changeplan.DeleteOp(id) }

// NewAddEdgeOp describes a UA adding {u,v} to graph id.
func NewAddEdgeOp(id, u, v int) UpdateOp { return changeplan.AddEdgeOp(id, u, v) }

// NewRemoveEdgeOp describes a UR removing {u,v} from graph id.
func NewRemoveEdgeOp(id, u, v int) UpdateOp { return changeplan.RemoveEdgeOp(id, u, v) }

// ServerAnswer is a query outcome from a Server: the merged answer ids,
// the epoch (dataset version) the answer reflects, and aggregate stats.
type ServerAnswer = router.QueryResult

// ServerUpdateResult summarizes one update batch.
type ServerUpdateResult = router.UpdateResult

// ServerStats is the server-wide statistics snapshot.
type ServerStats = router.Stats

// Server is the concurrent, sharded GC+ front-end: queries fan out to N
// independent runtime shards in parallel while dataset updates flow
// through an epoch-sequenced single-writer path, so every query observes
// one consistent dataset version. All methods are safe for concurrent
// use; see internal/router for the architecture and the consistency
// argument.
type Server struct {
	srv *router.Server
}

// NewServer builds a concurrent Server over the initial dataset graphs,
// which receive global ids 0..len(initial)-1 and are partitioned
// round-robin across the shards.
func NewServer(initial []*Graph, opts ServeOptions) (*Server, error) {
	srvOpts := router.Options{
		Shards:            opts.Shards,
		Method:            opts.Method,
		DisableCache:      opts.DisableCache,
		EagerValidate:     opts.EagerValidate,
		VerifyParallelism: opts.VerifyParallelism,
		RepairParallelism: opts.RepairParallelism,
		DisableRepair:     opts.DisableRepair,
		DataDir:           opts.DataDir,
		SnapshotEvery:     opts.SnapshotEvery,
		DisableWAL:        opts.DisableWAL,
		NoSync:            opts.NoSync,
		SlowLogThreshold:  opts.SlowLogThreshold,
		SlowLogSize:       opts.SlowLogSize,
		TraceSampleRate:   opts.TraceSampleRate,
		TraceStoreSize:    opts.TraceStoreSize,
		EnablePlanner:     opts.EnablePlanner,
		PlanCacheSize:     opts.PlanCacheSize,

		ReadyMaxPendingRepairs: opts.ReadyMaxPendingRepairs,
		QueryTimeout:           opts.QueryTimeout,
		UpdateTimeout:          opts.UpdateTimeout,
		MaxInFlightQueries:     opts.MaxInFlightQueries,
		MaxInFlightUpdates:     opts.MaxInFlightUpdates,
		WALPolicy:              opts.WALPolicy,
		DisableDegradation:     opts.DisableDegradation,
		Transport:              opts.Transport,
		Logger:                 opts.Logger,
	}
	if !opts.DisableCache {
		srvOpts.Cache = &cache.Config{
			Capacity:        opts.CacheSize,
			WindowSize:      opts.WindowSize,
			Model:           opts.Model,
			Policy:          opts.Policy,
			DisableHitIndex: opts.DisableHitIndex,
		}
	}
	srv, err := router.New(initial, srvOpts)
	if err != nil {
		return nil, err
	}
	return &Server{srv: srv}, nil
}

// SubgraphQuery returns all live dataset graphs containing q.
func (s *Server) SubgraphQuery(q *Graph) (*ServerAnswer, error) {
	return s.srv.SubgraphQuery(q)
}

// SupergraphQuery returns all live dataset graphs contained in q.
func (s *Server) SupergraphQuery(q *Graph) (*ServerAnswer, error) {
	return s.srv.SupergraphQuery(q)
}

// SubgraphQueryCtx is SubgraphQuery bounded by ctx: cancellation or an
// expired deadline aborts the query at its next cooperative checkpoint
// (on top of any ServeOptions.QueryTimeout).
func (s *Server) SubgraphQueryCtx(ctx context.Context, q *Graph) (*ServerAnswer, error) {
	return s.srv.SubgraphQueryCtx(ctx, q)
}

// SupergraphQueryCtx is SupergraphQuery bounded by ctx.
func (s *Server) SupergraphQueryCtx(ctx context.Context, q *Graph) (*ServerAnswer, error) {
	return s.srv.SupergraphQueryCtx(ctx, q)
}

// SubgraphQueryLimit streams: it returns the limit smallest answer ids
// (an exact prefix of the full ascending answer set), stopping
// verification early once each shard has enough. The result's Truncated
// field reports whether answers were cut; truncated results are never
// admitted into the cache. limit <= 0 means no limit.
func (s *Server) SubgraphQueryLimit(ctx context.Context, q *Graph, limit int) (*ServerAnswer, error) {
	return s.srv.SubgraphQueryLimitCtx(ctx, q, limit)
}

// SupergraphQueryLimit is SubgraphQueryLimit for supergraph queries.
func (s *Server) SupergraphQueryLimit(ctx context.Context, q *Graph, limit int) (*ServerAnswer, error) {
	return s.srv.SupergraphQueryLimitCtx(ctx, q, limit)
}

// UpdateCtx is Update bounded by ctx; a deadline that expires before the
// batch starts applying rejects the whole batch (nothing applied).
func (s *Server) UpdateCtx(ctx context.Context, ops []UpdateOp) (*ServerUpdateResult, error) {
	return s.srv.UpdateCtx(ctx, ops)
}

// Update applies a batch of dataset change operations atomically with
// respect to concurrent queries and advances the epoch once. With
// durability enabled, a non-nil error alongside a non-nil result means
// the batch WAS applied in memory but a WAL append failed (it may not
// survive a crash) — do not re-submit such a batch, the ops are already
// in effect.
func (s *Server) Update(ops []UpdateOp) (*ServerUpdateResult, error) {
	return s.srv.Update(ops)
}

// AddGraph inserts one dataset graph, returning its global id. Like
// Update, a durability failure returns the (valid, applied) id together
// with a non-nil error — retrying would insert the graph a second time
// under a new id.
func (s *Server) AddGraph(g *Graph) (int, error) {
	res, err := s.srv.Update([]UpdateOp{NewAddOp(g)})
	if res == nil {
		return 0, err
	}
	if res.Ops[0].Err != nil {
		return 0, res.Ops[0].Err
	}
	return res.Ops[0].ID, err
}

// Epoch returns the current dataset version (update batches applied).
func (s *Server) Epoch() uint64 { return s.srv.Epoch() }

// Stats snapshots server-wide and per-shard statistics.
func (s *Server) Stats() (*ServerStats, error) { return s.srv.Stats() }

// ServerSlowQuery is one captured slow-query log entry.
type ServerSlowQuery = router.SlowQuery

// SlowQueries returns the retained slow-query log entries, newest
// first (empty unless ServeOptions.SlowLogThreshold is set).
func (s *Server) SlowQueries() []ServerSlowQuery { return s.srv.SlowQueries() }

// Handler returns the HTTP API that cmd/gcserve serves: POST /query
// (with ?trace=1 for per-shard stage traces), POST /update, GET /stats,
// GET /metrics (Prometheus exposition, with exemplar trace ids on the
// latency histograms), GET /healthz, GET /readyz, GET /debug/slowlog
// and GET /debug/traces (retained distributed traces; fetch one span
// tree by id at /debug/traces/{id}).
func (s *Server) Handler() http.Handler { return s.srv.Handler() }

// Shards returns the number of runtime shards.
func (s *Server) Shards() int { return s.srv.Shards() }

// Snapshot forces a durable snapshot of dataset and cache state (only
// meaningful with ServeOptions.DataDir; errors otherwise).
func (s *Server) Snapshot() error { return s.srv.Snapshot() }

// Recovered reports whether this server warm-restarted from persisted
// state, with the number of cache entries restored and the epoch
// recovery reached.
func (s *Server) Recovered() (entries int, epoch uint64, ok bool) { return s.srv.Recovered() }

// Close shuts the server down gracefully — with persistence enabled, a
// final snapshot is flushed first; subsequent calls fail. The returned
// error reports a failed final flush (the previous snapshot generation
// and the WAL remain recoverable).
func (s *Server) Close() error { return s.srv.Close() }

// GenerateAIDSLike synthesizes an AIDS-calibrated dataset of n labelled
// graphs (see DESIGN.md §3 for the substitution rationale). Deterministic
// in seed.
func GenerateAIDSLike(n int, seed int64) ([]*Graph, error) {
	cfg := synthetic.Default().WithGraphs(n)
	cfg.Seed = seed
	return synthetic.Generate(cfg)
}

// Version is the library version.
const Version = "1.0.0"
